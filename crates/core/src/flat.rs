//! Flat, cache-contiguous storage of a hub labeling — owned or borrowed.
//!
//! [`HubLabelIndex`] keeps one heap allocation per vertex (`Vec<LabelSet>`),
//! which is the natural shape during construction — label sets grow
//! independently — but a poor shape for serving: every query chases two
//! pointers into unrelated heap regions, and the index cannot be written to
//! or read from disk without walking every allocation.
//!
//! The serving layout lives here in several shapes, with one query kernel:
//!
//! * [`LabelStorage`] abstracts **how a vertex's label run is materialized**:
//!   [`RawStore`] hands out plain `&[LabelEntry]` slices, while
//!   [`CompressedStore`] streams entries out of a delta+varint encoded byte
//!   blob (see the compressed `.chl` v2 section in [`crate::persist`])
//!   through a [`DecodeCursor`] — no decompressed copy ever exists.
//! * [`LabelView`] is the **ownership-agnostic query kernel**, generic over
//!   the storage: ranking order, CSR offsets and a [`LabelStorage`], with
//!   every query method defined once. [`FlatView`] and [`CompressedView`]
//!   are its two instantiations; [`IndexView`] is the runtime-dispatched
//!   either-of-them a `.chl` v2 file of unknown encoding serves through.
//! * [`FlatIndex`] is the thin owning wrapper: the same three arrays in
//!   `Vec`s plus the full [`Ranking`], delegating every query through
//!   [`FlatIndex::as_view`]. (A literal `Deref<Target = FlatView>` is not
//!   expressible — the view borrows from `self` — so the wrapper forwards
//!   method by method instead.)
//!
//! The flat layout is what the `.chl` on-disk format (see [`crate::persist`])
//! stores byte-for-byte, so loading an index is one read plus validation —
//! and, for v2 files, querying needs no copy at all. Conversion to and from
//! [`HubLabelIndex`] is lossless, and all layouts and encodings answer every
//! query identically (asserted by the persistence proptests and the golden
//! fixture corpus).

use serde::{Deserialize, Serialize};

use chl_graph::types::{Distance, VertexId};
use chl_ranking::Ranking;

use crate::index::HubLabelIndex;
use crate::kernel::{self, HotHubCache};
use crate::labels::{join_sorted_iters, LabelEntry, LabelSet};
use crate::oracle::DistanceOracle;
use crate::persist::{self, PersistError, SaveOptions, ShardSpec};

/// How one vertex's label run is materialized out of a storage encoding.
///
/// The query kernel ([`LabelView`]) owns the CSR *shape* — the offsets array
/// saying how many labels each vertex has — while the storage owns the
/// *bytes* those labels live in. A storage only has to produce a cheap
/// cloneable cursor over one vertex's run, sorted strictly ascending by hub
/// rank position; the merge-join never learns whether the entries came from
/// a slice or a streaming decoder.
///
/// Implementations are `Copy` bundles of shared references, so views stay
/// cheap to pass around and hand to worker threads.
pub trait LabelStorage<'a>: Copy + Sync {
    /// Streaming iterator over one vertex's label run.
    type Cursor: Iterator<Item = LabelEntry> + Clone;

    /// The labels of vertex `v`, whose entry-index CSR bounds are
    /// `lo..hi` (taken from the validated offsets array).
    fn run(&self, v: usize, lo: usize, hi: usize) -> Self::Cursor;

    /// The same run as a plain contiguous slice, when this storage keeps
    /// entries decoded in memory; `None` for streaming encodings. This is
    /// what routes slice-backed storages into the tiered
    /// branchless/gallop/SIMD join ([`crate::kernel::join_adaptive`]) while
    /// streaming decoders keep the iterator kernel.
    #[inline]
    fn raw_run(&self, _v: usize, _lo: usize, _hi: usize) -> Option<&'a [LabelEntry]> {
        None
    }

    /// Bytes of backing storage the entries occupy in this encoding.
    fn storage_bytes(&self) -> usize;

    /// Human-readable encoding name for diagnostics.
    fn encoding(&self) -> &'static str;
}

/// [`LabelStorage`] over plain `LabelEntry` records: the flat encoding,
/// where a run is literally a subslice.
#[derive(Debug, Clone, Copy)]
pub struct RawStore<'a> {
    entries: &'a [LabelEntry],
}

impl<'a> LabelStorage<'a> for RawStore<'a> {
    type Cursor = std::iter::Copied<std::slice::Iter<'a, LabelEntry>>;

    #[inline]
    fn run(&self, _v: usize, lo: usize, hi: usize) -> Self::Cursor {
        self.entries[lo..hi].iter().copied()
    }

    #[inline]
    fn raw_run(&self, _v: usize, lo: usize, hi: usize) -> Option<&'a [LabelEntry]> {
        self.entries.get(lo..hi)
    }

    fn storage_bytes(&self) -> usize {
        std::mem::size_of_val(self.entries)
    }

    fn encoding(&self) -> &'static str {
        "flat"
    }
}

/// [`LabelStorage`] over the delta+varint compressed entries section of a
/// `.chl` v2 file (`FLAG_COMPRESSED_ENTRIES`): a per-vertex skip table into
/// a byte blob holding LEB128-encoded hub gaps and distances.
///
/// Queries decode the two runs they touch on the fly ([`DecodeCursor`]);
/// nothing else of the blob is ever expanded, so a mapped compressed index
/// serves straight from the page cache at the compressed footprint.
#[derive(Debug, Clone, Copy)]
pub struct CompressedStore<'a> {
    /// `skip[v]` is the byte offset of vertex `v`'s run in `blob`;
    /// `skip[n]` is the blob length. `n + 1` entries.
    skip: &'a [u64],
    /// Concatenated encoded runs, without tail padding.
    blob: &'a [u8],
}

impl<'a> CompressedStore<'a> {
    /// Assembles a compressed store from parts the persistence layer has
    /// fully validated (skip table monotone and consistent with the CSR
    /// offsets, every run decoding cleanly with canonical varints).
    pub(crate) fn from_validated_parts(skip: &'a [u64], blob: &'a [u8]) -> Self {
        debug_assert_eq!(*skip.last().unwrap_or(&0), blob.len() as u64);
        CompressedStore { skip, blob }
    }

    /// Encoded size of the entry payload in bytes (excluding the skip
    /// table), for compression-ratio reporting.
    pub fn encoded_len(&self) -> usize {
        self.blob.len()
    }
}

impl<'a> LabelStorage<'a> for CompressedStore<'a> {
    type Cursor = DecodeCursor<'a>;

    #[inline]
    fn run(&self, v: usize, lo: usize, hi: usize) -> Self::Cursor {
        let bytes = &self.blob[self.skip[v] as usize..self.skip[v + 1] as usize];
        DecodeCursor::new(bytes, hi - lo)
    }

    fn storage_bytes(&self) -> usize {
        std::mem::size_of_val(self.skip) + self.blob.len()
    }

    fn encoding(&self) -> &'static str {
        "compressed (delta+varint)"
    }
}

/// Streaming decoder over one vertex's delta+varint encoded label run.
///
/// The bytes it walks were fully validated at load time (canonical varints,
/// strictly positive hub gaps, exact run length), so decoding is
/// unconditional arithmetic; the defensive `Option` handling below only
/// exists so that a misuse can never panic, merely end the run early.
#[derive(Debug, Clone)]
pub struct DecodeCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev_hub: u32,
    first: bool,
}

impl<'a> DecodeCursor<'a> {
    fn new(bytes: &'a [u8], count: usize) -> Self {
        DecodeCursor {
            bytes,
            pos: 0,
            remaining: count,
            prev_hub: 0,
            first: true,
        }
    }
}

impl Iterator for DecodeCursor<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = persist::read_uvarint(self.bytes, &mut self.pos)?;
        let dist = persist::read_uvarint(self.bytes, &mut self.pos)?;
        let hub = if self.first {
            self.first = false;
            gap as u32
        } else {
            // Strict hub sorting makes every later gap >= 1 (validated).
            self.prev_hub.wrapping_add(gap as u32)
        };
        self.prev_hub = hub;
        Some(LabelEntry::new(hub, dist))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A borrowed hub labeling in the CSR serving layout: the query kernel
/// shared by every storage backend and entries encoding.
///
/// The label run of vertex `v` spans CSR entry indexes
/// `offsets[v] .. offsets[v + 1]`, sorted ascending by hub rank position,
/// and is materialized by the [`LabelStorage`] `S`; `order[pos]` is the
/// vertex at rank position `pos` (most important first). Construction is
/// restricted to this crate — a view always comes from a validated source,
/// either [`FlatIndex::as_view`] or the persistence layer
/// ([`view_bytes`](crate::persist::view_bytes) /
/// [`open_view`](crate::persist::open_view)) — so the query methods can
/// index with the CSR invariants taken as given.
///
/// Views are `Copy`: a few fat pointers, cheap to pass around and to send
/// to worker threads.
#[derive(Debug, Clone, Copy)]
pub struct LabelView<'a, S: LabelStorage<'a>> {
    offsets: &'a [u64],
    store: S,
    order: &'a [VertexId],
    /// Per-entry parent records (`.chl` path section): `parents[i]` is the
    /// next vertex on the shortest path from entry `i`'s owner toward its
    /// hub, the owner itself for zero-distance entries. `None` when the
    /// source carried no path section.
    parents: Option<&'a [u32]>,
}

/// A [`LabelView`] over plain `LabelEntry` slices — the flat encoding.
pub type FlatView<'a> = LabelView<'a, RawStore<'a>>;

/// A [`LabelView`] streaming out of a delta+varint compressed entries
/// section — same kernel, decoded on the fly.
pub type CompressedView<'a> = LabelView<'a, CompressedStore<'a>>;

impl<'a, S: LabelStorage<'a>> LabelView<'a, S> {
    pub(crate) fn from_parts(order: &'a [VertexId], offsets: &'a [u64], store: S) -> Self {
        debug_assert_eq!(offsets.len(), order.len() + 1);
        LabelView {
            offsets,
            store,
            order,
            parents: None,
        }
    }

    /// Attaches validated per-entry parent records (one per label entry,
    /// validated by the persistence layer or [`crate::paths`]).
    pub(crate) fn with_parents(mut self, parents: &'a [u32]) -> Self {
        debug_assert_eq!(parents.len() as u64, *self.offsets.last().unwrap_or(&0));
        self.parents = Some(parents);
        self
    }

    /// The per-entry parent records, when the view carries path data.
    pub fn parents(&self) -> Option<&'a [u32]> {
        self.parents
    }

    /// `true` when [`Self::parents`] is present, i.e. path reconstruction
    /// is available on this view.
    pub fn has_path_data(&self) -> bool {
        self.parents.is_some()
    }

    /// Number of vertices covered by the view.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ranking's order array: `order()[pos]` is the vertex at rank
    /// position `pos`, most important first.
    pub fn order(&self) -> &'a [VertexId] {
        self.order
    }

    /// Vertex at rank position `pos`.
    ///
    /// # Panics
    ///
    /// Panics when `pos >= num_vertices()`.
    #[inline]
    pub fn vertex_at(&self, pos: u32) -> VertexId {
        self.order[pos as usize]
    }

    /// The CSR offsets array (`num_vertices + 1` entries, first `0`, last
    /// equal to [`Self::total_labels`]).
    pub fn offsets(&self) -> &'a [u64] {
        self.offsets
    }

    /// Streaming cursor over the labels of vertex `v`, or `None` when `v`
    /// is out of range. This is the storage-agnostic sibling of
    /// [`FlatView::try_labels_of`]: a flat store iterates a slice, a
    /// compressed store decodes as it goes.
    #[inline]
    pub fn label_run(&self, v: VertexId) -> Option<S::Cursor> {
        let lo = *self.offsets.get(v as usize)? as usize;
        let hi = *self.offsets.get(v as usize + 1)? as usize;
        Some(self.store.run(v as usize, lo, hi))
    }

    /// The run of vertex `v` as a plain slice, when the storage keeps
    /// entries decoded ([`LabelStorage::raw_run`]); `None` for streaming
    /// encodings or an out-of-range `v`.
    #[inline]
    fn raw_run_of(&self, v: VertexId) -> Option<&'a [LabelEntry]> {
        let lo = *self.offsets.get(v as usize)? as usize;
        let hi = *self.offsets.get(v as usize + 1)? as usize;
        self.store.raw_run(v as usize, lo, hi)
    }

    /// The merge join behind [`Self::query`] / [`Self::query_with_hub`]:
    /// slice-backed storages take the tiered branchless/gallop/SIMD kernel,
    /// streaming storages keep the iterator join. Both runs must be in
    /// range.
    #[inline]
    fn join_runs(
        &self,
        lu: S::Cursor,
        lv: S::Cursor,
        u: VertexId,
        v: VertexId,
    ) -> Option<(u32, Distance)> {
        match (self.raw_run_of(u), self.raw_run_of(v)) {
            (Some(ra), Some(rb)) => kernel::join_adaptive(ra, rb),
            _ => join_sorted_iters(lu, lv),
        }
    }

    /// The minimizing `(hub rank position, distance)` of a PPSD query —
    /// [`Self::query_with_hub`] before the position is mapped to a vertex
    /// id. Path unpacking needs the raw position to look entries up on the
    /// parent chain. `None` for disconnected or out-of-range pairs.
    pub(crate) fn join_hub_pos(&self, u: VertexId, v: VertexId) -> Option<(u32, Distance)> {
        let (mut lu, lv) = (self.label_run(u)?, self.label_run(v)?);
        if u == v {
            // A vertex carries its own zero-distance entry in any canonical
            // labeling; report it so callers get a real (position, 0)
            // witness. An (invalid) empty run yields None, not a panic.
            return lu.find(|e| e.dist == 0).map(|e| (e.hub, 0));
        }
        self.join_runs(lu, lv, u, v)
    }

    /// Locates vertex `v`'s label entry for hub rank position `hub_pos`:
    /// `Some((global_entry_index, (hub_pos, dist)))` when present. The
    /// global index addresses the parallel [`Self::parents`] array. Flat
    /// storages binary-search the run; streaming storages scan the sorted
    /// cursor and stop early.
    pub(crate) fn entry_of(&self, v: VertexId, hub_pos: u32) -> Option<(usize, (u32, Distance))> {
        let lo = *self.offsets.get(v as usize)? as usize;
        if let Some(run) = self.raw_run_of(v) {
            let i = run.partition_point(|e| e.hub < hub_pos);
            let e = run.get(i)?;
            return (e.hub == hub_pos).then_some((lo + i, (e.hub, e.dist)));
        }
        for (i, e) in self.label_run(v)?.enumerate() {
            if e.hub == hub_pos {
                return Some((lo + i, (e.hub, e.dist)));
            }
            if e.hub > hub_pos {
                return None;
            }
        }
        None
    }

    /// Answers a PPSD query: the exact shortest-path distance between `u` and
    /// `v`, or [`chl_graph::types::INFINITY`] when they are not connected.
    /// Ids outside `0..num_vertices()` are unreachable, including
    /// `query(u, u)` for a nonexistent `u`.
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        let (Some(lu), Some(lv)) = (self.label_run(u), self.label_run(v)) else {
            return chl_graph::types::INFINITY;
        };
        if u == v {
            return 0;
        }
        self.join_runs(lu, lv, u, v)
            .map(|(_, d)| d)
            .unwrap_or(chl_graph::types::INFINITY)
    }

    /// Like [`Self::query`] but also reports the hub (as a vertex id) through
    /// which the minimum distance is achieved. `None` for disconnected pairs
    /// and for out-of-range ids.
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        let (lu, lv) = (self.label_run(u)?, self.label_run(v)?);
        if u == v {
            return Some((u, 0));
        }
        self.join_runs(lu, lv, u, v)
            .map(|(hub_pos, d)| (self.vertex_at(hub_pos), d))
    }

    /// [`Self::query`] with a [`HotHubCache`] answering the head of the
    /// join: the cached hub positions (`hub < k`) are folded in via two
    /// array loads per hub, and only the run tails (`hub >= k`) go through
    /// the merge join. Returns exactly what [`Self::query`] returns — the
    /// cache rows store absent labels as `INFINITY`, which the saturating
    /// min-reduction absorbs — and falls back to the plain query when the
    /// cache was built for a different vertex count.
    pub fn query_cached(&self, cache: &HotHubCache, u: VertexId, v: VertexId) -> Distance {
        let (Some(lu), Some(lv)) = (self.label_run(u), self.label_run(v)) else {
            return chl_graph::types::INFINITY;
        };
        if u == v {
            return 0;
        }
        if cache.num_vertices() != self.num_vertices() {
            return self.query(u, v);
        }
        let head = cache.min_over_hot(u, v);
        let k = cache.top_k();
        let tail = match (self.raw_run_of(u), self.raw_run_of(v)) {
            (Some(ra), Some(rb)) => kernel::join_adaptive(tail_from(ra, k), tail_from(rb, k)),
            _ => join_sorted_iters(lu.skip_while(|e| e.hub < k), lv.skip_while(|e| e.hub < k)),
        };
        head.min(tail.map(|(_, d)| d).unwrap_or(chl_graph::types::INFINITY))
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        *self.offsets.last().unwrap_or(&0) as usize
    }

    /// Average label size per vertex (ALS).
    pub fn average_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_labels() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Human-readable name of the entries encoding backing this view.
    pub fn encoding(&self) -> &'static str {
        self.store.encoding()
    }

    /// Bytes of backing storage the view's slices span — for a view over a
    /// `.chl` v2 buffer, the file bytes actually touched by queries; for a
    /// compressed view this is the *encoded* footprint, not the 16-byte-per-
    /// entry decoded one. Unlike an owned [`FlatIndex`], a view carries no
    /// rank-position array, so this is smaller than
    /// [`FlatIndex::memory_bytes`] by `4 * n`.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets)
            + self.store.storage_bytes()
            + std::mem::size_of_val(self.order)
    }
}

/// The `hub >= k` suffix of a hub-sorted run — the part a top-`k`
/// [`HotHubCache`] does not cover.
#[inline]
fn tail_from(run: &[LabelEntry], k: u32) -> &[LabelEntry] {
    run.get(run.partition_point(|e| e.hub < k)..)
        .unwrap_or_default()
}

impl<'a> FlatView<'a> {
    /// Assembles a flat view from raw parts, without validating the CSR
    /// invariants. Callers (the owning wrapper and the persistence layer)
    /// must have established them.
    pub(crate) fn from_validated_parts(
        order: &'a [VertexId],
        offsets: &'a [u64],
        entries: &'a [LabelEntry],
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), entries.len() as u64);
        LabelView::from_parts(order, offsets, RawStore { entries })
    }

    /// All label entries, concatenated in vertex order.
    pub fn entries(&self) -> &'a [LabelEntry] {
        self.store.entries
    }

    /// Label slice of vertex `v`, sorted ascending by hub rank position.
    ///
    /// # Panics
    ///
    /// Panics when `v >= num_vertices()`; use [`Self::try_labels_of`] for
    /// ids that may come from untrusted input.
    #[inline]
    pub fn labels_of(&self, v: VertexId) -> &'a [LabelEntry] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.store.entries[lo..hi]
    }

    /// Label slice of vertex `v`, or `None` when `v` is out of range.
    #[inline]
    pub fn try_labels_of(&self, v: VertexId) -> Option<&'a [LabelEntry]> {
        let lo = *self.offsets.get(v as usize)? as usize;
        let hi = *self.offsets.get(v as usize + 1)? as usize;
        Some(&self.store.entries[lo..hi])
    }
}

impl<'a> CompressedView<'a> {
    /// Assembles a compressed view from parts the persistence layer has
    /// fully validated.
    pub(crate) fn from_validated_compressed_parts(
        order: &'a [VertexId],
        offsets: &'a [u64],
        skip: &'a [u64],
        blob: &'a [u8],
    ) -> Self {
        debug_assert_eq!(skip.len(), offsets.len());
        LabelView::from_parts(
            order,
            offsets,
            CompressedStore::from_validated_parts(skip, blob),
        )
    }

    /// Encoded size of the entry payload in bytes (excluding the skip
    /// table), for compression-ratio reporting.
    pub fn encoded_len(&self) -> usize {
        self.store.encoded_len()
    }
}

impl<'a, S: LabelStorage<'a>> DistanceOracle for LabelView<'a, S> {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        LabelView::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        LabelView::memory_bytes(self)
    }

    // S×T blocks pivot on the hub side instead of running |S|·|T| point
    // queries; answers are identical per cell (property-tested).
    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        kernel::matrix_pivot(self, sources, targets)
    }
}

/// A query endpoint that is in range but whose labels live on a different
/// shard of a sharded index — the typed refusal a shard answers instead of
/// a silently wrong `INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotThisShard {
    /// The in-range endpoint this shard does not own.
    pub vertex: VertexId,
}

impl std::fmt::Display for NotThisShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vertex {} is not owned by this shard", self.vertex)
    }
}

impl std::error::Error for NotThisShard {}

/// Borrowed shard identity of a `.chl` v3 shard file: which shard this is,
/// how the QDOL layout was derived, and the sorted vertex set whose label
/// runs the file actually carries.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// This file's shard number, `0 .. shard_count`.
    pub shard_id: u32,
    /// Shards the index was split into.
    pub shard_count: u32,
    /// QDOL partition count the owned set was derived from.
    pub zeta: u32,
    /// Owned vertex ids, sorted strictly ascending.
    pub owned: &'a [VertexId],
}

impl ShardView<'_> {
    /// `true` when this shard carries the labels of vertex `v`.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        self.owned.binary_search(&v).is_ok()
    }

    /// Copies the borrowed identity into an owned [`ShardSpec`].
    pub fn to_spec(&self) -> ShardSpec {
        ShardSpec {
            shard_id: self.shard_id,
            shard_count: self.shard_count,
            zeta: self.zeta,
            owned: self.owned.to_vec(),
        }
    }
}

/// The two entries encodings an [`IndexView`] can be backed by. Both arms
/// run the identical [`LabelView`] kernel; the enum is one match deep, not
/// a second implementation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StorageView<'a> {
    /// Flat 16-byte-record entries, reinterpreted in place (zero-copy).
    Flat(FlatView<'a>),
    /// Delta+varint compressed entries, decoded per label run as queries
    /// stream them.
    Compressed(CompressedView<'a>),
}

/// A borrowed view over a `.chl` v2/v3 buffer of either entries encoding —
/// what [`crate::persist::open_view`] returns and what
/// [`crate::mapped::MmapIndex`] hands out per query when the encoding is
/// only known at run time. A v3 shard file additionally carries its
/// [`ShardView`]; [`Self::try_query`] is the shard-honest query surface,
/// refusing foreign endpoints with a typed [`NotThisShard`] instead of the
/// silently wrong `INFINITY` the shard-blind [`Self::query`] would produce.
#[derive(Debug, Clone, Copy)]
pub struct IndexView<'a> {
    pub(crate) storage: StorageView<'a>,
    pub(crate) shard: Option<ShardView<'a>>,
}

impl<'a> IndexView<'a> {
    /// Wraps a flat view (no shard identity).
    pub(crate) fn flat(view: FlatView<'a>) -> Self {
        IndexView {
            storage: StorageView::Flat(view),
            shard: None,
        }
    }

    /// Wraps a compressed view (no shard identity).
    pub(crate) fn compressed(view: CompressedView<'a>) -> Self {
        IndexView {
            storage: StorageView::Compressed(view),
            shard: None,
        }
    }

    /// Attaches a validated shard identity.
    pub(crate) fn with_shard(mut self, shard: ShardView<'a>) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attaches validated per-entry parent records to the inner view.
    pub(crate) fn with_parents(mut self, parents: &'a [u32]) -> Self {
        self.storage = match self.storage {
            StorageView::Flat(view) => StorageView::Flat(view.with_parents(parents)),
            StorageView::Compressed(view) => StorageView::Compressed(view.with_parents(parents)),
        };
        self
    }

    /// The per-entry parent records, when the view carries path data.
    pub fn parents(&self) -> Option<&'a [u32]> {
        match &self.storage {
            StorageView::Flat(view) => view.parents(),
            StorageView::Compressed(view) => view.parents(),
        }
    }

    /// `true` when path reconstruction is available on this view.
    pub fn has_path_data(&self) -> bool {
        self.parents().is_some()
    }

    /// The shard identity of a v3 shard file; `None` for a whole index.
    pub fn shard(&self) -> Option<&ShardView<'a>> {
        self.shard.as_ref()
    }

    /// `true` when the view serves one shard of a sharded index.
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// Exact PPSD distance, [`chl_graph::types::INFINITY`] for disconnected
    /// or out-of-range pairs — same contract as [`LabelView::query`].
    ///
    /// This surface is shard-blind: on a shard file a foreign endpoint
    /// produces `INFINITY` because its label run is stored empty. Callers
    /// serving a shard must use [`Self::try_query`].
    #[inline]
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        match &self.storage {
            StorageView::Flat(view) => view.query(u, v),
            StorageView::Compressed(view) => view.query(u, v),
        }
    }

    /// [`LabelView::query_cached`] behind the runtime encoding dispatch:
    /// the cache answers hub positions `< k`, the merge join only the run
    /// tails. Answers match [`Self::query`] exactly.
    #[inline]
    pub fn query_cached(&self, cache: &HotHubCache, u: VertexId, v: VertexId) -> Distance {
        match &self.storage {
            StorageView::Flat(view) => view.query_cached(cache, u, v),
            StorageView::Compressed(view) => view.query_cached(cache, u, v),
        }
    }

    /// Shard-honest query: `Ok` with the exact distance (out-of-range ids
    /// stay `INFINITY`, exactly like [`Self::query`]), `Err(NotThisShard)`
    /// when either endpoint is in range but owned by a different shard.
    /// On an unsharded view this never errs.
    #[inline]
    pub fn try_query(&self, u: VertexId, v: VertexId) -> Result<Distance, NotThisShard> {
        if let Some(shard) = &self.shard {
            let n = self.num_vertices() as u64;
            for id in [u, v] {
                if (id as u64) < n && !shard.owns(id) {
                    return Err(NotThisShard { vertex: id });
                }
            }
        }
        Ok(self.query(u, v))
    }

    /// Like [`Self::query`] but also reports the hub achieving the minimum.
    #[inline]
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        match &self.storage {
            StorageView::Flat(view) => view.query_with_hub(u, v),
            StorageView::Compressed(view) => view.query_with_hub(u, v),
        }
    }

    /// Number of vertices covered by the view. For a shard file this is the
    /// **global** vertex count of the unsharded index, not the owned count.
    pub fn num_vertices(&self) -> usize {
        match &self.storage {
            StorageView::Flat(view) => view.num_vertices(),
            StorageView::Compressed(view) => view.num_vertices(),
        }
    }

    /// Total number of labels stored (decoded count). For a shard file,
    /// only this shard's labels.
    pub fn total_labels(&self) -> usize {
        match &self.storage {
            StorageView::Flat(view) => view.total_labels(),
            StorageView::Compressed(view) => view.total_labels(),
        }
    }

    /// The CSR offsets array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &'a [u64] {
        match &self.storage {
            StorageView::Flat(view) => view.offsets(),
            StorageView::Compressed(view) => view.offsets(),
        }
    }

    /// The ranking's order array.
    pub fn order(&self) -> &'a [VertexId] {
        match &self.storage {
            StorageView::Flat(view) => view.order(),
            StorageView::Compressed(view) => view.order(),
        }
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        match &self.storage {
            StorageView::Flat(view) => view.max_label_size(),
            StorageView::Compressed(view) => view.max_label_size(),
        }
    }

    /// `true` when the underlying entries section is delta+varint
    /// compressed.
    pub fn is_compressed(&self) -> bool {
        matches!(self.storage, StorageView::Compressed(_))
    }

    /// Human-readable name of the entries encoding.
    pub fn encoding(&self) -> &'static str {
        match &self.storage {
            StorageView::Flat(view) => view.encoding(),
            StorageView::Compressed(view) => view.encoding(),
        }
    }

    /// Bytes of backing storage the view spans in its on-disk encoding.
    pub fn memory_bytes(&self) -> usize {
        let storage = match &self.storage {
            StorageView::Flat(view) => view.memory_bytes(),
            StorageView::Compressed(view) => view.memory_bytes(),
        };
        storage + self.shard.map_or(0, |s| std::mem::size_of_val(s.owned))
    }

    /// Copies the view into an owned [`FlatIndex`], decoding if compressed
    /// and preserving the shard identity if present.
    pub fn to_owned_index(&self) -> FlatIndex {
        let index = match &self.storage {
            StorageView::Flat(view) => FlatIndex::from_view(*view),
            StorageView::Compressed(view) => {
                let ranking = Ranking::from_order(view.order().to_vec(), view.num_vertices())
                    .expect("views only exist over validated permutations");
                let mut entries = Vec::with_capacity(view.total_labels());
                for v in 0..view.num_vertices() as VertexId {
                    entries.extend(view.label_run(v).expect("v in range"));
                }
                let index =
                    FlatIndex::from_validated_parts(view.offsets().to_vec(), entries, ranking);
                match view.parents() {
                    Some(p) => index.with_validated_parents(p.to_vec()),
                    None => index,
                }
            }
        };
        let mut index = index;
        // The shard section was validated when this view was built and the
        // index above is a copy of the same storage, so the cross-section
        // invariant already holds — re-attach the identity directly instead
        // of routing through the fallible `with_shard`.
        index.shard = self.shard.as_ref().map(|s| s.to_spec());
        index
    }
}

impl DistanceOracle for IndexView<'_> {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        IndexView::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        IndexView::memory_bytes(self)
    }

    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        match &self.storage {
            StorageView::Flat(view) => kernel::matrix_pivot(view, sources, targets),
            StorageView::Compressed(view) => kernel::matrix_pivot(view, sources, targets),
        }
    }
}

/// A hub labeling stored as two contiguous CSR-style arrays, owned.
///
/// This is a thin owning wrapper over the [`FlatView`] query kernel: the
/// arrays live in `Vec`s (plus the full [`Ranking`], whose rank-position
/// array the borrowed view does not need), and every query delegates through
/// [`FlatIndex::as_view`].
///
/// Build one with [`FlatIndex::from_index`] (or `From<&HubLabelIndex>`),
/// persist it with [`FlatIndex::save`] and reload it with
/// [`FlatIndex::load`]:
///
/// ```
/// use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
/// use chl_core::flat::FlatIndex;
/// use chl_graph::generators::{grid_network, GridOptions};
///
/// let g = grid_network(&GridOptions { rows: 5, cols: 5, ..GridOptions::default() }, 3);
/// let built = ChlBuilder::new(&g)
///     .ranking(RankingStrategy::Degree)
///     .algorithm(Algorithm::Pll)
///     .build()
///     .unwrap();
/// let flat = FlatIndex::from_index(&built.index);
/// assert_eq!(flat.query(0, 24), built.index.query(0, 24));
/// assert_eq!(flat.to_index().unwrap(), built.index);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatIndex {
    offsets: Vec<u64>,
    entries: Vec<LabelEntry>,
    ranking: Ranking,
    /// Shard identity when this index is one QDOL shard of a larger index
    /// (labels present only for the owned vertex set, empty runs
    /// elsewhere); `None` for a whole index.
    shard: Option<ShardSpec>,
    /// Per-entry parent records for path reconstruction, parallel to
    /// `entries` (see [`crate::paths`]); `None` when the index carries no
    /// path data.
    parents: Option<Vec<u32>>,
}

impl FlatIndex {
    /// Flattens a pointer-per-vertex index into contiguous storage.
    pub fn from_index(index: &HubLabelIndex) -> Self {
        let n = index.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(index.total_labels());
        offsets.push(0);
        for v in 0..n as VertexId {
            entries.extend_from_slice(index.labels_of(v).entries());
            offsets.push(entries.len() as u64);
        }
        FlatIndex {
            offsets,
            entries,
            ranking: index.ranking().clone(),
            shard: None,
            parents: None,
        }
    }

    /// Copies a borrowed view into owned storage (the inverse of
    /// [`FlatIndex::as_view`]); the only allocation a zero-copy load path
    /// performs when a caller explicitly asks for ownership.
    pub fn from_view(view: FlatView<'_>) -> Self {
        let ranking = Ranking::from_order(view.order().to_vec(), view.num_vertices())
            .expect("views only exist over validated permutations");
        FlatIndex {
            offsets: view.offsets().to_vec(),
            entries: view.entries().to_vec(),
            ranking,
            shard: None,
            parents: view.parents().map(<[u32]>::to_vec),
        }
    }

    /// Borrows the index as the ownership-agnostic query kernel. All query
    /// methods on `FlatIndex` are thin forwards through this view, so owned
    /// and borrowed serving paths execute literally the same code.
    #[inline]
    pub fn as_view(&self) -> FlatView<'_> {
        let view =
            FlatView::from_validated_parts(self.ranking.order(), &self.offsets, &self.entries);
        match &self.parents {
            Some(p) => view.with_parents(p),
            None => view,
        }
    }

    /// Rebuilds the pointer-per-vertex [`HubLabelIndex`]. The conversion is
    /// lossless: `FlatIndex::from_index(&i).to_index().unwrap() == i`.
    pub fn to_index(&self) -> Result<HubLabelIndex, crate::error::LabelingError> {
        let labels = (0..self.num_vertices() as VertexId)
            .map(|v| LabelSet::from_entries(self.labels_of(v).to_vec()))
            .collect();
        HubLabelIndex::new(labels, self.ranking.clone())
    }

    /// Assembles a flat index from raw parts, without validating the CSR
    /// invariants. The persistence layer calls this after its own validation;
    /// everything else should go through [`FlatIndex::from_index`].
    pub(crate) fn from_validated_parts(
        offsets: Vec<u64>,
        entries: Vec<LabelEntry>,
        ranking: Ranking,
    ) -> Self {
        debug_assert_eq!(offsets.len(), ranking.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), entries.len() as u64);
        FlatIndex {
            offsets,
            entries,
            ranking,
            shard: None,
            parents: None,
        }
    }

    /// Attaches per-entry parent records the caller has already validated
    /// against this index's entries (the persistence layer after
    /// [`crate::persist`]'s cross-section checks, or
    /// [`crate::paths::compute_parents`] which constructs them correct).
    pub(crate) fn with_validated_parents(mut self, parents: Vec<u32>) -> Self {
        debug_assert_eq!(parents.len(), self.entries.len());
        self.parents = Some(parents);
        self
    }

    /// Attaches per-entry parent records for path reconstruction, one per
    /// label entry, validating the structural invariants (in-range ids,
    /// zero-distance entries self-parented, positive-distance entries not).
    pub fn with_parents(self, parents: Vec<u32>) -> Result<Self, PersistError> {
        persist::validate_parents(self.num_vertices(), &self.offsets, &self.entries, &parents)?;
        Ok(self.with_validated_parents(parents))
    }

    /// The per-entry parent records, when this index carries path data.
    pub fn parents(&self) -> Option<&[u32]> {
        self.parents.as_deref()
    }

    /// `true` when path reconstruction is available on this index.
    pub fn has_path_data(&self) -> bool {
        self.parents.is_some()
    }

    /// Attaches a shard identity, making this index one QDOL shard of a
    /// larger index. Validates the spec against this index's dimensions and
    /// the cross-section invariant that every vertex **not** in the owned
    /// set has an empty label run — the property that makes the union of
    /// all shards the unsharded index.
    pub fn with_shard(mut self, shard: ShardSpec) -> Result<Self, PersistError> {
        shard.validate(self.num_vertices() as u64)?;
        persist::check_shard_consistency(&shard.owned, &self.offsets)?;
        self.shard = Some(shard);
        Ok(self)
    }

    /// The shard identity, when this index is one shard of a sharded index.
    pub fn shard(&self) -> Option<&ShardSpec> {
        self.shard.as_ref()
    }

    /// Carves the shard described by `spec` out of this (whole) index:
    /// label runs are kept verbatim for owned vertices and emptied for all
    /// others, then the spec is attached via [`FlatIndex::with_shard`].
    /// Dimensions (`num_vertices`, ranking) are preserved, so the union of
    /// the shards produced for a covering partition reproduces this index
    /// exactly — the invariant `chl build --shards` relies on.
    pub fn restrict_to_shard(&self, spec: ShardSpec) -> Result<FlatIndex, PersistError> {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        let mut parents = self.parents.as_ref().map(|_| Vec::new());
        offsets.push(0u64);
        for v in 0..n as VertexId {
            if spec.owns(v) {
                entries.extend_from_slice(self.labels_of(v));
                if let (Some(out), Some(all)) = (parents.as_mut(), self.parents.as_ref()) {
                    let lo = self.offsets[v as usize] as usize;
                    let hi = self.offsets[v as usize + 1] as usize;
                    out.extend_from_slice(&all[lo..hi]);
                }
            }
            offsets.push(entries.len() as u64);
        }
        FlatIndex {
            offsets,
            entries,
            ranking: self.ranking.clone(),
            shard: None,
            parents,
        }
        .with_shard(spec)
    }

    /// Shard-honest query — same contract as [`IndexView::try_query`]: on
    /// a shard, an in-range endpoint owned by another shard is a typed
    /// [`NotThisShard`] instead of a silently wrong `INFINITY`.
    pub fn try_query(&self, u: VertexId, v: VertexId) -> Result<Distance, NotThisShard> {
        self.as_index_view().try_query(u, v)
    }

    /// Borrows the index as the runtime-dispatched [`IndexView`], shard
    /// identity included — the same shape the zero-copy load paths serve.
    pub fn as_index_view(&self) -> IndexView<'_> {
        let view = IndexView::flat(self.as_view());
        match &self.shard {
            Some(s) => view.with_shard(ShardView {
                shard_id: s.shard_id,
                shard_count: s.shard_count,
                zeta: s.zeta,
                owned: &s.owned,
            }),
            None => view,
        }
    }

    /// Number of vertices covered by the index.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ranking the labeling respects.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// The CSR offsets array (`num_vertices + 1` entries, first `0`, last
    /// equal to [`Self::total_labels`]).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// All label entries, concatenated in vertex order.
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Label slice of vertex `v`, sorted ascending by hub rank position.
    ///
    /// # Panics
    ///
    /// Panics when `v >= num_vertices()`; use [`Self::try_labels_of`] for
    /// ids that may come from untrusted input.
    #[inline]
    pub fn labels_of(&self, v: VertexId) -> &[LabelEntry] {
        self.as_view().labels_of(v)
    }

    /// Label slice of vertex `v`, or `None` when `v` is out of range.
    #[inline]
    pub fn try_labels_of(&self, v: VertexId) -> Option<&[LabelEntry]> {
        self.as_view().try_labels_of(v)
    }

    /// Answers a PPSD query: the exact shortest-path distance between `u` and
    /// `v`, or [`chl_graph::types::INFINITY`] when they are not connected.
    /// Same contract as [`HubLabelIndex::query`], on contiguous storage: ids
    /// outside `0..num_vertices()` are unreachable, including `query(u, u)`
    /// for a nonexistent `u`.
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        self.as_view().query(u, v)
    }

    /// Like [`Self::query`] but also reports the hub (as a vertex id) through
    /// which the minimum distance is achieved. `None` for disconnected pairs
    /// and for out-of-range ids.
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        self.as_view().query_with_hub(u, v)
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        self.entries.len()
    }

    /// Average label size per vertex (ALS).
    pub fn average_label_size(&self) -> f64 {
        self.as_view().average_label_size()
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        self.as_view().max_label_size()
    }

    /// Approximate heap memory consumed, in bytes: the two flat arrays plus
    /// both direction arrays of the [`Ranking`] (order and rank position) —
    /// everything resident when this index serves.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.entries.len() * std::mem::size_of::<LabelEntry>()
            + self.ranking.memory_bytes()
    }

    /// Serializes the index into the versioned `.chl` byte format
    /// (see [`crate::persist`] for the field-by-field layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        persist::to_bytes(self)
    }

    /// Serializes the index into `.chl` v2 bytes with explicit
    /// [`SaveOptions`] — `compress: true` writes the entries section
    /// delta+varint encoded (see [`crate::persist`]).
    pub fn to_bytes_with(&self, options: &SaveOptions) -> Vec<u8> {
        persist::to_bytes_with(self, options)
    }

    /// Deserializes an index from `.chl` bytes, validating magic, version,
    /// checksum and every CSR/ranking invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        persist::from_bytes(bytes)
    }

    /// Writes the index to `path` in the `.chl` format.
    ///
    /// A worked round-trip (the serving half runs in a fresh process in real
    /// deployments — `load` only needs the file):
    ///
    /// ```
    /// use chl_core::flat::FlatIndex;
    /// use chl_core::HubLabelIndex;
    /// use chl_ranking::Ranking;
    ///
    /// // Label a 3-vertex path graph 0 - 1 - 2 by hand.
    /// let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
    /// let index = HubLabelIndex::from_triples(
    ///     vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
    ///     ranking,
    /// );
    ///
    /// let path = std::env::temp_dir().join(format!("chl-doctest-{}.chl", std::process::id()));
    /// FlatIndex::from_index(&index).save(&path).unwrap();
    ///
    /// let served = FlatIndex::load(&path).unwrap();
    /// assert_eq!(served.query(0, 2), 2);
    /// assert_eq!(served.query(0, 2), index.query(0, 2));
    /// std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<(), PersistError> {
        persist::save(self, path)
    }

    /// Writes the index to `path` with explicit [`SaveOptions`]; with
    /// `compress: true` the entries section is delta+varint encoded and the
    /// file loads/serves through every path a flat file does.
    pub fn save_with<P: AsRef<std::path::Path>>(
        &self,
        path: P,
        options: &SaveOptions,
    ) -> Result<(), PersistError> {
        persist::save_with(self, path, options)
    }

    /// Reads an index from a `.chl` file written by [`Self::save`].
    /// Corruption of any kind — truncation, bit flips, wrong magic or
    /// version — is reported as a typed [`PersistError`], never a panic.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self, PersistError> {
        persist::load(path)
    }
}

impl From<&HubLabelIndex> for FlatIndex {
    fn from(index: &HubLabelIndex) -> Self {
        FlatIndex::from_index(index)
    }
}

impl From<FlatView<'_>> for FlatIndex {
    fn from(view: FlatView<'_>) -> Self {
        FlatIndex::from_view(view)
    }
}

impl DistanceOracle for FlatIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        FlatIndex::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        FlatIndex::memory_bytes(self)
    }

    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        kernel::matrix_pivot(&self.as_view(), sources, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::types::INFINITY;

    fn tiny_index() -> HubLabelIndex {
        // Path 0 - 1 - 2, ranking 1 > 0 > 2 (see index.rs tests).
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        )
    }

    #[test]
    fn flat_answers_identically_to_pointer_layout() {
        let idx = tiny_index();
        let flat = FlatIndex::from_index(&idx);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(flat.query(u, v), idx.query(u, v), "({u}, {v})");
                assert_eq!(flat.query_with_hub(u, v), idx.query_with_hub(u, v));
            }
        }
    }

    #[test]
    fn view_is_the_same_kernel_as_the_owned_index() {
        let flat = FlatIndex::from_index(&tiny_index());
        let view = flat.as_view();
        assert_eq!(view.num_vertices(), flat.num_vertices());
        assert_eq!(view.total_labels(), flat.total_labels());
        assert_eq!(view.max_label_size(), flat.max_label_size());
        assert_eq!(view.order(), flat.ranking().order());
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        // Views are Copy and round-trip to an equal owned index.
        let copy = view;
        assert_eq!(FlatIndex::from_view(copy), flat);
        assert_eq!(FlatIndex::from(view), flat);
    }

    #[test]
    fn conversion_round_trips_losslessly() {
        let idx = tiny_index();
        let flat = FlatIndex::from(&idx);
        assert_eq!(flat.to_index().unwrap(), idx);
    }

    #[test]
    fn csr_shape_and_statistics_match() {
        let idx = tiny_index();
        let flat = FlatIndex::from_index(&idx);
        assert_eq!(flat.num_vertices(), 3);
        assert_eq!(flat.offsets(), &[0, 2, 3, 5]);
        assert_eq!(flat.total_labels(), idx.total_labels());
        assert_eq!(flat.max_label_size(), idx.max_label_size());
        assert!((flat.average_label_size() - idx.average_label_size()).abs() < 1e-12);
        assert_eq!(flat.labels_of(1).len(), 1);
        assert!(flat.memory_bytes() > 0);
    }

    #[test]
    fn memory_bytes_accounts_for_the_ranking_too() {
        let flat = FlatIndex::from_index(&tiny_index());
        let n = flat.num_vertices();
        let arrays = std::mem::size_of_val(flat.offsets()) + std::mem::size_of_val(flat.entries());
        // The owned index keeps order + position (8 bytes per vertex)...
        assert_eq!(flat.memory_bytes(), arrays + 8 * n);
        // ...while a borrowed view only spans the order array (4 per vertex).
        assert_eq!(flat.as_view().memory_bytes(), arrays + 4 * n);
    }

    #[test]
    fn empty_index_flattens() {
        let flat = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(4)));
        assert_eq!(flat.num_vertices(), 4);
        assert_eq!(flat.total_labels(), 0);
        assert_eq!(flat.query(0, 3), INFINITY);
        assert_eq!(flat.query(2, 2), 0);
        assert_eq!(flat.max_label_size(), 0);
        assert_eq!(flat.average_label_size(), 0.0);
    }

    #[test]
    fn zero_vertex_index_flattens() {
        let flat = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        assert_eq!(flat.num_vertices(), 0);
        assert_eq!(flat.average_label_size(), 0.0);
        assert_eq!(flat.offsets(), &[0]);
        assert_eq!(flat.as_view().num_vertices(), 0);
        assert_eq!(flat.as_view().average_label_size(), 0.0);
    }

    #[test]
    fn oracle_surface_matches_direct_calls() {
        let flat = FlatIndex::from_index(&tiny_index());
        let oracle: &dyn DistanceOracle = &flat;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.num_vertices(), 3);
        assert!(oracle.memory_bytes() > 0);
        assert_eq!(oracle.distances(&[(0, 1), (0, 2)]), vec![1, 2]);
        // The borrowed view serves through the same trait.
        let view = flat.as_view();
        let oracle: &dyn DistanceOracle = &view;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.distances(&[(0, 1), (0, 2)]), vec![1, 2]);
    }

    #[test]
    fn out_of_range_ids_are_unreachable_not_a_panic() {
        let flat = FlatIndex::from_index(&tiny_index()); // 3 vertices
        for &(u, v) in &[(0, 3), (3, 0), (3, 3), (7, 9), (u32::MAX, 0)] {
            assert_eq!(flat.query(u, v), INFINITY, "({u}, {v})");
            assert_eq!(flat.query_with_hub(u, v), None, "({u}, {v})");
            assert_eq!(flat.as_view().query(u, v), INFINITY, "view ({u}, {v})");
            assert_eq!(flat.as_view().query_with_hub(u, v), None);
        }
        // A self-query on a nonexistent vertex is NOT 0.
        assert_eq!(flat.query(3, 3), INFINITY);
        assert!(flat.try_labels_of(2).is_some());
        assert!(flat.try_labels_of(3).is_none());
        assert!(flat.as_view().try_labels_of(3).is_none());
        // Batch queries go through the same checked path.
        let oracle: &dyn DistanceOracle = &flat;
        assert_eq!(
            oracle.distances(&[(0, 2), (3, 3), (0, 9)]),
            vec![2, INFINITY, INFINITY]
        );
        assert!(!oracle.connected(3, 3));
    }
}
