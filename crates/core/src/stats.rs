//! Construction-time instrumentation.
//!
//! The paper's figures are mostly plots of construction-time behaviour:
//! labels generated per SPT (Figure 2), vertices explored per label Ψ
//! (Figure 3), construction vs. cleaning time (Figure 7), superstep label
//! volumes, and so on. Every constructor in this crate fills in a
//! [`ConstructionStats`] so the bench harness can regenerate those series
//! without re-instrumenting the algorithms.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-SPT instrumentation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SptRecord {
    /// Rank position of the SPT's root (the paper's "SPT id").
    pub root_position: u32,
    /// Number of labels this SPT generated.
    pub labels_generated: usize,
    /// Number of vertices popped from the Dijkstra queue (explored).
    pub vertices_explored: usize,
}

impl SptRecord {
    /// Ψ for this SPT: vertices explored per label generated
    /// (`f64::INFINITY` when no label was generated).
    pub fn psi(&self) -> f64 {
        if self.labels_generated == 0 {
            f64::INFINITY
        } else {
            self.vertices_explored as f64 / self.labels_generated as f64
        }
    }
}

/// Statistics of one labeling construction run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConstructionStats {
    /// Name of the algorithm that produced the labeling.
    pub algorithm: String,
    /// Wall-clock time of the label construction phase(s).
    pub construction_time: Duration,
    /// Wall-clock time of the label cleaning phase(s).
    pub cleaning_time: Duration,
    /// Total wall-clock time (construction + cleaning + bookkeeping).
    pub total_time: Duration,
    /// Number of worker threads used.
    pub threads: usize,
    /// Per-SPT records, ordered by root rank position.
    pub spt_records: Vec<SptRecord>,
    /// Labels present before any cleaning ran.
    pub labels_before_cleaning: usize,
    /// Labels remaining after cleaning (equals the index's total).
    pub labels_after_cleaning: usize,
    /// Number of construction/cleaning supersteps executed (GLL/DGLL); 1 for
    /// single-pass algorithms.
    pub supersteps: usize,
    /// For hybrid constructors: how many SPTs were PLaNTed before switching
    /// to pruned construction.
    pub planted_trees: usize,
    /// Construction-time distance queries issued.
    pub distance_queries: usize,
}

impl ConstructionStats {
    /// Creates an empty record tagged with an algorithm name.
    pub fn new(algorithm: impl Into<String>) -> Self {
        ConstructionStats {
            algorithm: algorithm.into(),
            supersteps: 1,
            ..Default::default()
        }
    }

    /// Total labels generated across all SPTs (before any cleaning).
    pub fn total_labels_generated(&self) -> usize {
        self.spt_records.iter().map(|r| r.labels_generated).sum()
    }

    /// Total vertices explored across all SPTs.
    pub fn total_vertices_explored(&self) -> usize {
        self.spt_records.iter().map(|r| r.vertices_explored).sum()
    }

    /// Labels-per-SPT series ordered by root rank position (Figure 2). The
    /// result has one entry per recorded SPT.
    pub fn labels_per_spt(&self) -> Vec<(u32, usize)> {
        let mut v: Vec<(u32, usize)> = self
            .spt_records
            .iter()
            .map(|r| (r.root_position, r.labels_generated))
            .collect();
        v.sort_unstable_by_key(|&(pos, _)| pos);
        v
    }

    /// Ψ-per-SPT series ordered by root rank position (Figure 3).
    pub fn psi_per_spt(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .spt_records
            .iter()
            .map(|r| (r.root_position, r.psi()))
            .collect();
        v.sort_unstable_by_key(|a| a.0);
        v
    }

    /// Fraction of generated labels that the cleaning pass removed.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.labels_before_cleaning == 0 {
            0.0
        } else {
            1.0 - self.labels_after_cleaning as f64 / self.labels_before_cleaning as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_handles_zero_labels() {
        let r = SptRecord {
            root_position: 3,
            labels_generated: 0,
            vertices_explored: 50,
        };
        assert!(r.psi().is_infinite());
        let r = SptRecord {
            root_position: 3,
            labels_generated: 10,
            vertices_explored: 50,
        };
        assert_eq!(r.psi(), 5.0);
    }

    #[test]
    fn aggregates_sum_over_spts() {
        let mut s = ConstructionStats::new("test");
        s.spt_records.push(SptRecord {
            root_position: 1,
            labels_generated: 4,
            vertices_explored: 8,
        });
        s.spt_records.push(SptRecord {
            root_position: 0,
            labels_generated: 6,
            vertices_explored: 6,
        });
        assert_eq!(s.total_labels_generated(), 10);
        assert_eq!(s.total_vertices_explored(), 14);
        // Series are sorted by root position.
        assert_eq!(s.labels_per_spt(), vec![(0, 6), (1, 4)]);
        assert_eq!(s.psi_per_spt()[0], (0, 1.0));
    }

    #[test]
    fn redundancy_ratio() {
        let mut s = ConstructionStats::new("test");
        assert_eq!(s.redundancy_ratio(), 0.0);
        s.labels_before_cleaning = 200;
        s.labels_after_cleaning = 150;
        assert!((s.redundancy_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn new_sets_algorithm_name_and_defaults() {
        let s = ConstructionStats::new("gll");
        assert_eq!(s.algorithm, "gll");
        assert_eq!(s.supersteps, 1);
        assert_eq!(s.planted_trees, 0);
    }
}
