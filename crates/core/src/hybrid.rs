//! Shared-memory Hybrid constructor: PLaNT the label-heavy prefix, finish
//! with GLL-style pruned construction (§5.2.1 adapted to a single node).
//!
//! The paper motivates the hybrid with two empirical observations (Figures 2
//! and 3): SPTs rooted at the most important vertices generate the bulk of
//! all labels and have a tiny Ψ (vertices explored per label), so PLaNTing
//! them is nearly free and avoids both pruning queries and (in the
//! distributed case) label traffic; SPTs rooted at unimportant vertices
//! generate almost no labels, so pruned construction is far cheaper for them.
//! The switch point is driven by a moving average of Ψ crossing `Ψ_th`.
//!
//! The same structure pays off on a single node: the first GLL superstep
//! normally generates far more than `α·n` labels because no global labels
//! exist yet to prune with (§7.2) — PLaNTing that prefix removes the problem,
//! which is exactly the fix the paper suggests for shared memory.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex as StdMutex;
use std::time::Instant;

use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::config::LabelingConfig;
use crate::gll::gll_from_state;
use crate::index::LabelingResult;
use crate::labels::{LabelEntry, LabelSet};
use crate::plant::{plant_dijkstra, CommonLabelTable, PlantScratch};
use crate::stats::ConstructionStats;
use crate::table::ConcurrentLabelTable;

/// Runs the shared-memory Hybrid constructor.
///
/// Thin wrapper over [`crate::api::HybridLabeler`]; panics on invalid
/// inputs. Prefer [`crate::api::ChlBuilder`] in new code.
pub fn shared_hybrid(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::HybridLabeler
        .build(g, ranking, config)
        .unwrap_or_else(|e| panic!("shared_hybrid: {e}"))
}

pub(crate) fn shared_hybrid_impl(
    g: &CsrGraph,
    ranking: &Ranking,
    config: &LabelingConfig,
) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let threads = config.effective_threads().max(1);

    // ---- Phase 1: PLaNT roots in rank order until Ψ exceeds the threshold ----
    let table = ConcurrentLabelTable::new(n);
    let next_root = AtomicU32::new(0);
    let stop = AtomicBool::new(false);
    let records = StdMutex::new(Vec::new());
    let psi_state = StdMutex::new(PsiWindow::new(config.psi_window));
    let common = CommonLabelTable::empty(n);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = PlantScratch::new(n);
                let mut local_records = Vec::new();
                loop {
                    // ORDERING: advisory stop flag — a missed update only
                    // costs one extra tree before the worker re-checks;
                    // Relaxed suffices.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // ORDERING: root claiming — the fetch_add's RMW
                    // atomicity alone makes positions unique; labels are
                    // published via the common table's locks and the scope
                    // join.
                    let pos = next_root.fetch_add(1, Ordering::Relaxed);
                    if pos as usize >= n {
                        break;
                    }
                    let root = ranking.vertex_at(pos);
                    let tree = plant_dijkstra(
                        g,
                        ranking,
                        root,
                        config.early_termination,
                        &common,
                        &mut scratch,
                    );
                    for &(v, d) in &tree.labels {
                        table.append(v, LabelEntry::new(pos, d));
                    }
                    let record = tree.record();
                    let switch = {
                        let mut window = psi_state.lock().expect("psi window lock");
                        window.observe(record.vertices_explored, record.labels_generated);
                        window.average() > config.psi_threshold
                    };
                    local_records.push(record);
                    if switch {
                        // ORDERING: advisory stop flag, see the load above.
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                records.lock().expect("records lock").extend(local_records);
            });
        }
    });

    let planted_records = records.into_inner().expect("records lock poisoned");
    let planted_trees = planted_records.len();
    let plant_time = start.elapsed();

    // Labels PLaNTed so far are canonical and complete for their roots: they
    // seed GLL's global table directly, no cleaning required.
    let global: Vec<LabelSet> = table.into_label_sets();

    // ---- Phase 2: pruned GLL supersteps over the remaining roots ----
    // The claimed-but-unprocessed positions are bounded by `planted_trees`
    // having consumed positions 0..k where k = number of processed roots;
    // because the stop flag can fire while several claims are in flight we
    // recover the exact resume point as the number of processed SPTs (each
    // claimed position below it was processed — threads never skip a claim).
    let resume_from = {
        // Positions are claimed contiguously; a position is processed unless a
        // thread observed `stop` before running it. The safe resume point is
        // the smallest unprocessed position.
        let mut processed = vec![false; n];
        for r in &planted_records {
            processed[r.root_position as usize] = true;
        }
        processed.iter().position(|&p| !p).unwrap_or(n)
    } as u32;

    let planted_labels: usize = planted_records.iter().map(|r| r.labels_generated).sum();
    let mut result = gll_from_state(g, ranking, config, global, resume_from);

    let mut stats = ConstructionStats::new("Hybrid(PLaNT+GLL)");
    stats.threads = threads;
    stats.planted_trees = planted_trees;
    stats.supersteps = result.stats.supersteps;
    stats.spt_records = planted_records;
    stats
        .spt_records
        .extend(result.stats.spt_records.iter().copied());
    stats.distance_queries = result.stats.distance_queries;
    stats.construction_time = plant_time + result.stats.construction_time;
    stats.cleaning_time = result.stats.cleaning_time;
    stats.labels_before_cleaning = planted_labels + result.stats.labels_before_cleaning;
    stats.labels_after_cleaning = result.index.total_labels();
    stats.total_time = start.elapsed();
    result.stats = stats;
    result
}

/// Moving average of Ψ over the most recent SPTs.
struct PsiWindow {
    capacity: usize,
    explored: Vec<usize>,
    labels: Vec<usize>,
    cursor: usize,
    filled: usize,
}

impl PsiWindow {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PsiWindow {
            capacity,
            explored: vec![0; capacity],
            labels: vec![0; capacity],
            cursor: 0,
            filled: 0,
        }
    }

    fn observe(&mut self, explored: usize, labels: usize) {
        self.explored[self.cursor] = explored;
        self.labels[self.cursor] = labels;
        self.cursor = (self.cursor + 1) % self.capacity;
        self.filled = (self.filled + 1).min(self.capacity);
    }

    /// Ψ averaged over the window: total explored / total labels.
    fn average(&self) -> f64 {
        if self.filled < self.capacity {
            // Not enough evidence yet to switch.
            return 0.0;
        }
        let explored: usize = self.explored.iter().sum();
        let labels: usize = self.labels.iter().sum();
        if labels == 0 {
            f64::INFINITY
        } else {
            explored as f64 / labels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    #[test]
    fn hybrid_produces_the_canonical_labeling() {
        let g = erdos_renyi(80, 0.07, 12, 3);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let hybrid = shared_hybrid(&g, &ranking, &LabelingConfig::default().with_threads(4)).index;
        assert_eq!(canonical, hybrid);
    }

    #[test]
    fn hybrid_matches_on_scale_free_graph_with_small_window() {
        let g = barabasi_albert(200, 3, 15);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let mut config = LabelingConfig::default()
            .with_threads(4)
            .with_psi_threshold(5.0);
        config.psi_window = 8;
        let result = shared_hybrid(&g, &ranking, &config);
        assert_eq!(canonical, result.index);
        // A low threshold with a small window must actually trigger the switch.
        assert!(result.stats.planted_trees < 200);
        assert!(result.stats.planted_trees > 0);
    }

    #[test]
    fn hybrid_with_huge_threshold_is_pure_plant() {
        let g = erdos_renyi(50, 0.1, 8, 9);
        let ranking = degree_ranking(&g);
        let config = LabelingConfig::default()
            .with_threads(2)
            .with_psi_threshold(1e12);
        let result = shared_hybrid(&g, &ranking, &config);
        assert_eq!(result.stats.planted_trees, 50);
        assert_eq!(result.index, sequential_pll(&g, &ranking).index);
    }

    #[test]
    fn hybrid_queries_match_dijkstra_on_road_like_graph() {
        let g = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                ..GridOptions::default()
            },
            44,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 20,
                degree_tiebreak: true,
            },
            1,
        );
        let mut config = LabelingConfig::default()
            .with_threads(4)
            .with_psi_threshold(3.0);
        config.psi_window = 10;
        let result = shared_hybrid(&g, &ranking, &config);
        for src in [0u32, 45, 99] {
            let d = dijkstra(&g, src);
            for v in 0..100u32 {
                assert_eq!(result.index.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn psi_window_behaviour() {
        let mut w = PsiWindow::new(3);
        w.observe(10, 10);
        assert_eq!(w.average(), 0.0, "window not yet full");
        w.observe(10, 1);
        w.observe(10, 1);
        assert!((w.average() - 30.0 / 12.0).abs() < 1e-9);
        w.observe(100, 0);
        w.observe(100, 0);
        w.observe(100, 0);
        assert!(w.average().is_infinite());
    }
}
