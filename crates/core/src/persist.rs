//! The versioned `.chl` on-disk index format.
//!
//! A `.chl` file is a byte-exact dump of a [`FlatIndex`]: the ranking that
//! gives hub positions their meaning, the CSR offsets array and the
//! contiguous label entries. Since version 2 the on-disk layout **is** the
//! query-time layout: every section starts on an 8-byte boundary and stores
//! its integers exactly as the in-memory arrays do, so a validated buffer can
//! be served through a borrowed [`FlatView`] without copying a single label
//! ([`view_bytes`]). Version 1 files (the original packed layout) keep
//! loading through the copying path ([`from_bytes`] / [`load`]).
//!
//! ## Version 3 layout (current)
//!
//! All integers little-endian; every section 8-byte aligned and zero-padded
//! to a multiple of 8 bytes:
//!
//! ```text
//! offset  size        field
//! 0       4           magic        "CHLI"
//! 4       4           version      u32, 3
//! 8       8           n            u64, number of vertices (global, even in a shard file)
//! 16      8           m            u64, number of label entries stored in this file
//! 24      4           flags        u32, bit 0 = compressed entries, bit 1 = sharded
//! 28      4           crc_ranking  u32, CRC-32 of the ranking section (incl. padding)
//! 32      4           crc_offsets  u32, CRC-32 of the offsets section
//! 36      4           crc_entries  u32, CRC-32 of the entries section
//! 40      4           crc_shard    u32, CRC-32 of the shard section (0 when not sharded)
//! 44      4           crc_header   u32, CRC-32 of header bytes 0..44
//! 48      n * 4 (+pad) ranking     vertex ids, most important first, zero-padded to 8
//! ..      (n+1) * 8   offsets      entries[offsets[v]..offsets[v+1]] labels vertex v
//! ..      m * 16      entries      (u32 hub rank position, u32 zero, u64 distance)
//! ..      see below   shard        optional shard section (flags bit 1)
//! ```
//!
//! `crc_header` closes the corruption-detection gap v2 left open: the first
//! 40 bytes of a v2 file sit outside all three section checksums, so a
//! flipped header field surfaced as a confusing downstream section error. A
//! v3 header is self-checking — any header flip is a precise
//! [`PersistError::HeaderChecksumMismatch`] before a single payload byte is
//! interpreted.
//!
//! The 16-byte entry record mirrors `#[repr(C)] LabelEntry` exactly (hub at
//! offset 0, distance at offset 8, four padding bytes that must be zero), so
//! `&[u8] -> &[LabelEntry]` is a pointer cast on little-endian hosts.
//!
//! ## Shard section (v3, flags bit 1)
//!
//! A sharded file holds one QDOL shard of an index: the **full** ranking and
//! the **full** `(n+1)`-slot offsets array (foreign vertices simply have
//! empty runs), but only the owned vertices' label entries — `m` counts the
//! entries actually present in this file. The trailing shard section records
//! which shard this is:
//!
//! ```text
//! offset  size             field
//! +0      4                shard_id     u32, < shard_count
//! +4      4                shard_count  u32, >= 1
//! +8      4                zeta         u32, QDOL partition count, >= 2
//! +12     4                owned_count  u32
//! +16     owned_count * 4  owned        strictly increasing vertex ids (+pad to 8)
//! ```
//!
//! Keeping `n` global means a shard file answers over the same vertex-id
//! space as the unsharded index; a query naming an in-range vertex the shard
//! does not own is a typed `NotThisShard` at the view layer (see
//! [`IndexView::try_query`](crate::flat::IndexView::try_query)), never a
//! silently wrong `INFINITY`. Validation enforces that every vertex outside
//! the owned set has an empty run, so the union of all shards' entries is
//! exactly the unsharded index.
//!
//! ## Path section (v3, flags bit 2)
//!
//! A file built with `chl build --paths` carries one parent record per label
//! entry, sandwiched between the entries section and the optional shard
//! section. `parents[i]` names the next vertex on the shortest path from the
//! entry's owning vertex toward the entry's hub vertex (`parents[i] == v`
//! exactly when the entry's distance is zero, i.e. the vertex is its own
//! hub). The v3 header is a fixed 48 bytes, so unlike the other sections the
//! path section carries its CRC in an 8-byte prelude of its own:
//!
//! ```text
//! offset  size        field
//! +0      4           crc_paths  u32, CRC-32 of everything after the prelude
//!                                (parents array + tail padding)
//! +4      4           reserved   u32, must be zero
//! +8      m * 4       parents    one vertex id per label entry, entry order
//! ..      pad to 8    zero padding
//! ```
//!
//! Load-time validation enforces the cross-section invariant that a
//! zero-distance entry's parent is the vertex itself and every other parent
//! is a distinct in-range vertex; the strictly-decreasing-distance walk that
//! guarantees unpacking terminates is enforced per query (see
//! [`crate::paths`]), so a hostile parents array yields a typed error, never
//! a hang or a panic.
//!
//! ## Version 2 layout (legacy, readable and writable)
//!
//! Identical to v3 without the `crc_shard`/`crc_header` words (40-byte
//! header) and without the shard section; the flags word knows only bit 0.
//! v2 files keep loading byte-identically through every path, and
//! [`SaveOptions::v2`] still writes them for old readers.
//!
//! ## Compressed entries section (flags bit 0)
//!
//! With [`FLAG_COMPRESSED_ENTRIES`] set in the flags word, the header,
//! ranking and offsets sections are unchanged but the entries section stores
//! delta+varint encoded label runs instead of 16-byte records:
//!
//! ```text
//! ..      (n+1) * 8        skip   u64 byte offsets: vertex v's encoded run is
//!                                 blob[skip[v]..skip[v+1]]; skip[n] = blob length
//! ..      skip[n] (+pad)   blob   per vertex, per entry: LEB128 gap, LEB128 dist
//! ```
//!
//! Within a run the first entry stores its hub rank position directly and
//! every later entry stores the gap to the previous hub (>= 1, since runs
//! are strictly hub-sorted); distances are plain LEB128 u64s. Both use
//! canonical (minimal-length) little-endian base-128 varints — overlong
//! encodings are rejected, which is what makes re-encoding byte-stable.
//! Because labels are hub-sorted, gaps are small and one entry typically
//! costs 2–4 bytes instead of 16 (the paper names the aggregate label store
//! as the memory bottleneck at scale).
//!
//! The skip table is what keeps decode O(label set): a query seeks straight
//! to the two runs it intersects and streams them through the
//! [`CompressedView`] kernel. `crc_entries`
//! covers the whole section (skip table, blob and tail padding), and the
//! expected file length is self-describing via `skip[n]` — validated with
//! the same exactness as the flat layout. Compressed files load everywhere
//! flat files do: the copying loader decodes into a [`FlatIndex`], while
//! [`open_view`] / `MmapIndex` serve them in place by streaming.
//!
//! ## Version 1 layout (legacy, read-only)
//!
//! ```text
//! offset  size        field
//! 0       4           magic    "CHLI"
//! 4       4           version  u32, 1
//! 8       8           n        u64
//! 16      8           m        u64
//! 24      4           crc32    u32, CRC-32 of every byte after the header
//! 28      n * 4       ranking
//! ..      (n+1) * 8   offsets
//! ..      m * 12      entries  (u32 hub, u64 distance) packed pairs
//! ```
//!
//! ## Versioning and compatibility policy
//!
//! `version` is bumped on **any** layout change; readers reject versions they
//! do not know ([`PersistError::UnsupportedVersion`]) rather than guessing.
//! The flags word is validated per version: bit 1 (sharded) is only legal in
//! v3, so a v2 reader keeps rejecting files it cannot represent. v1 files
//! load (copying) but cannot back a zero-copy view
//! ([`PersistError::NotZeroCopy`]); there is no in-place migration — an
//! index is cheap to rebuild from its graph, so old files are regenerated,
//! not converted. Writers emit v3 by default ([`to_bytes`] / [`save`]);
//! [`SaveOptions::v2`] selects the v2 layout for old readers (refused for
//! sharded indexes, which v2 cannot express) and [`to_bytes_v1`] remains for
//! compatibility tests and old tooling.
//!
//! ## Corruption detection
//!
//! Loading validates, in order: the magic, the version, the flags word, that
//! the file length matches the header's dimensions exactly (truncation and
//! trailing garbage are both rejected), the checksums — one CRC-32 per
//! section in v2, so integrity can be checked (and was computed by the
//! writer) incrementally, section by section, instead of in one pass over a
//! multi-GB payload — that all padding bytes are zero, and finally the
//! semantic invariants: the ranking is a permutation, the offsets start at
//! zero and rise monotonically to `m`, and every vertex's entries are
//! strictly hub-sorted with in-range hub positions. Every failure is a typed
//! [`PersistError`]; no input, however mangled, panics the loader.

use std::fmt;
use std::fs;
use std::ops::Range;
use std::path::Path;

use chl_graph::types::VertexId;
use chl_ranking::Ranking;
use serde::{Deserialize, Serialize};

use crate::flat::{CompressedView, FlatIndex, FlatView, IndexView, ShardView, StorageView};
use crate::labels::LabelEntry;

/// File magic: "Canonical Hub Label Index".
pub const MAGIC: &[u8; 4] = b"CHLI";
/// Current format version. Bumped on any layout change.
pub const VERSION: u32 = 3;
/// The previous aligned format version (no header CRC, no shard section),
/// still both readable and writable ([`SaveOptions::v2`]).
pub const VERSION_V2: u32 = 2;
/// The legacy packed format version, still readable via the copying path.
pub const VERSION_V1: u32 = 1;
/// Size of the v1 fixed header in bytes (`magic | version | n | m | crc32`).
pub const HEADER_LEN_V1: usize = 28;
/// Size of the v2 fixed header in bytes
/// (`magic | version | n | m | flags | crc_ranking | crc_offsets | crc_entries`).
pub const HEADER_LEN_V2: usize = 40;
/// Size of the v3 fixed header in bytes: the v2 header plus `crc_shard` and
/// `crc_header`. A multiple of [`SECTION_ALIGN`], so the ranking section
/// still starts aligned with no pad between header and payload.
pub const HEADER_LEN_V3: usize = 48;
/// Size of one serialized v1 label entry in bytes (`u32 hub | u64 dist`).
pub const ENTRY_LEN_V1: usize = 12;
/// Size of one serialized v2/v3 label entry in bytes
/// (`u32 hub | u32 zero | u64 dist`), identical to `size_of::<LabelEntry>()`.
pub const ENTRY_LEN_V2: usize = 16;
/// Alignment every v2/v3 section start and length is padded to.
pub const SECTION_ALIGN: usize = 8;
/// Flags bit 0: the entries section is delta+varint compressed (per-set
/// skip table + LEB128 hub gaps and distances) instead of 16-byte records.
pub const FLAG_COMPRESSED_ENTRIES: u32 = 1 << 0;
/// Flags bit 1 (v3 only): the file holds one QDOL shard — labels for the
/// owned vertex set recorded in the trailing shard section, empty runs for
/// every other vertex.
pub const FLAG_SHARDED: u32 = 1 << 1;
/// Flags bit 2 (v3 only): the file carries a per-entry parent/via-hub
/// section between the entries and shard sections, enabling shortest-path
/// reconstruction (see [`crate::paths`]). Files without it load fine;
/// `path()` then reports a typed
/// [`PathError::NoPathData`](crate::paths::PathError::NoPathData).
pub const FLAG_PATHS: u32 = 1 << 2;
/// Every flag bit a v2 file may carry; bits 1 and 2 need v3 sections.
pub const FLAGS_KNOWN_V2: u32 = FLAG_COMPRESSED_ENTRIES;
/// Every flag bit this reader understands (in a v3 file); any other bit set
/// is [`PersistError::UnsupportedFlags`].
pub const FLAGS_KNOWN: u32 = FLAG_COMPRESSED_ENTRIES | FLAG_SHARDED | FLAG_PATHS;

/// The flag bits legal for a given format version.
fn flags_known(version: u32) -> u32 {
    if version == VERSION_V2 {
        FLAGS_KNOWN_V2
    } else {
        FLAGS_KNOWN
    }
}

/// Writer knobs for [`to_bytes_with`] / [`save_with`]. The default writes
/// the flat v3 layout; `compress` switches the entries section to the
/// delta+varint encoding behind [`FLAG_COMPRESSED_ENTRIES`], and `version`
/// selects the v2 layout for compatibility with older readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveOptions {
    /// Delta-encode hub positions and varint-encode distances in the
    /// entries section. Several-fold smaller files; queries through the
    /// zero-copy paths stream-decode the two runs they touch instead of
    /// reinterpreting them in place.
    pub compress: bool,
    /// Format version to emit: [`VERSION`] (the default) or [`VERSION_V2`].
    /// Any other value falls back to [`VERSION`]. A sharded index always
    /// serializes as v3 — v2 cannot express the shard section.
    pub version: u32,
}

impl Default for SaveOptions {
    fn default() -> Self {
        SaveOptions {
            compress: false,
            version: VERSION,
        }
    }
}

impl SaveOptions {
    /// Options selecting the compressed entries encoding.
    pub fn compressed() -> Self {
        SaveOptions {
            compress: true,
            ..SaveOptions::default()
        }
    }

    /// Options selecting the legacy v2 layout (flat entries).
    pub fn v2() -> Self {
        SaveOptions {
            compress: false,
            version: VERSION_V2,
        }
    }

    /// The version this writer will actually emit for `index`: indexes that
    /// need a v3-only section (shard identity, path parents) force v3,
    /// anything but an explicit [`VERSION_V2`] is v3.
    fn effective_version(&self, needs_v3: bool) -> u32 {
        if needs_v3 || self.version != VERSION_V2 {
            VERSION
        } else {
            VERSION_V2
        }
    }
}

/// The payload sections of a `.chl` file, in file order. v2/v3 store one
/// checksum per section so corruption reports name the section hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The ranking order array (`order[pos] = vertex`).
    Ranking,
    /// The CSR offsets array.
    Offsets,
    /// The concatenated label entries.
    Entries,
    /// The v3 per-entry parent records (path reconstruction data).
    Paths,
    /// The trailing v3 shard section (shard identity + owned vertex set).
    Shard,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Ranking => "ranking",
            Section::Offsets => "offsets",
            Section::Entries => "entries",
            Section::Paths => "paths",
            Section::Shard => "shard",
        })
    }
}

/// Which QDOL shard a `.chl` v3 shard file holds: its identity within the
/// cluster and the sorted set of vertex ids whose labels it carries.
///
/// `zeta` is the QDOL partition count the layout was derived from
/// (`C(zeta, 2) <= shard_count`): a shard owning partition pair `(i, j)`
/// holds the complete labels of every vertex in partitions `i` and `j`, so
/// it can answer any query whose two endpoints both land in its owned set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index in `0..shard_count`.
    pub shard_id: u32,
    /// Total number of shards in the layout.
    pub shard_count: u32,
    /// The QDOL partition count the pair layout was derived from.
    pub zeta: u32,
    /// Strictly increasing vertex ids whose labels this shard holds.
    pub owned: Vec<VertexId>,
}

impl ShardSpec {
    /// `true` when this shard holds vertex `v`'s labels.
    pub fn owns(&self, v: VertexId) -> bool {
        self.owned.binary_search(&v).is_ok()
    }

    /// Number of vertices this shard owns.
    pub fn owned_count(&self) -> usize {
        self.owned.len()
    }

    /// The structural invariants every load path enforces: a sane identity
    /// and a strictly increasing owned set within `0..n`.
    pub fn validate(&self, n: u64) -> Result<(), PersistError> {
        validate_shard_meta(self.shard_id, self.shard_count, self.zeta, &self.owned, n)
    }
}

/// The shard section's structural invariants, shared by the copying and
/// zero-copy load paths: a sane identity and a strictly increasing owned
/// set within `0..n`.
fn validate_shard_meta(
    shard_id: u32,
    shard_count: u32,
    zeta: u32,
    owned: &[VertexId],
    n: u64,
) -> Result<(), PersistError> {
    if shard_count == 0 || shard_id >= shard_count {
        return Err(PersistError::Malformed(format!(
            "shard section: shard id {shard_id} out of range for {shard_count} shards"
        )));
    }
    if zeta < 2 {
        return Err(PersistError::Malformed(format!(
            "shard section: QDOL partition count {zeta} must be at least 2"
        )));
    }
    let mut prev: Option<VertexId> = None;
    for &v in owned {
        if u64::from(v) >= n {
            return Err(PersistError::Malformed(format!(
                "shard section: owned vertex {v} out of range for {n} vertices"
            )));
        }
        if prev.is_some_and(|p| p >= v) {
            return Err(PersistError::Malformed(
                "shard section: owned vertex ids must be strictly increasing".into(),
            ));
        }
        prev = Some(v);
    }
    Ok(())
}

/// The cross-section shard invariant: a vertex the shard does not own must
/// have an empty label run, so the union of all shards' entries is exactly
/// the unsharded index (no double counting, no smuggled labels).
pub(crate) fn check_shard_consistency(
    owned: &[VertexId],
    offsets: &[u64],
) -> Result<(), PersistError> {
    let n = offsets.len() - 1;
    let mut owned = owned.iter().copied().peekable();
    for v in 0..n {
        if owned.peek().is_some_and(|&o| o as usize == v) {
            owned.next();
            continue;
        }
        if offsets[v + 1] != offsets[v] {
            return Err(PersistError::Malformed(format!(
                "shard section: vertex {v} has {} label entries but is not in the owned set",
                offsets[v + 1] - offsets[v]
            )));
        }
    }
    Ok(())
}

/// The cross-section invariants of the path section against the entries it
/// annotates: one parent per entry, every parent an in-range vertex id, a
/// zero-distance entry (the vertex is its own hub) pointing at itself, and
/// every positive-distance entry pointing at a *different* vertex (the walk
/// must move). The strictly-decreasing-distance property that guarantees
/// unpacking terminates is enforced per query (see [`crate::paths`]) so the
/// loader stays O(m).
pub(crate) fn validate_parents(
    n: usize,
    offsets: &[u64],
    entries: &[LabelEntry],
    parents: &[u32],
) -> Result<(), PersistError> {
    if parents.len() != entries.len() {
        return Err(PersistError::Malformed(format!(
            "paths section: {} parent records for {} label entries",
            parents.len(),
            entries.len()
        )));
    }
    for v in 0..n {
        let lo = offsets[v] as usize;
        let hi = offsets[v + 1] as usize;
        for (e, &p) in entries[lo..hi].iter().zip(&parents[lo..hi]) {
            check_parent_entry(n, v as VertexId, e.dist, p)?;
        }
    }
    Ok(())
}

/// The per-entry half of [`validate_parents`], shared with the streaming
/// compressed validator (which never materializes the entries).
fn check_parent_entry(n: usize, v: VertexId, dist: u64, parent: u32) -> Result<(), PersistError> {
    if parent as usize >= n {
        return Err(PersistError::Malformed(format!(
            "paths section: vertex {v} has parent {parent} out of range for {n} vertices"
        )));
    }
    if dist == 0 && parent != v {
        return Err(PersistError::Malformed(format!(
            "paths section: zero-distance entry of vertex {v} must be its own parent, found {parent}"
        )));
    }
    if dist != 0 && parent == v {
        return Err(PersistError::Malformed(format!(
            "paths section: positive-distance entry of vertex {v} points at itself"
        )));
    }
    Ok(())
}

/// Errors produced while reading or writing `.chl` index files.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `CHLI` magic — not an index file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file was written by a format version this reader does not know.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
    },
    /// The flags word carries bits this reader does not understand (or, for
    /// a v2 file, bits only v3 defines — like the sharded bit).
    UnsupportedFlags {
        /// Flags word stamped in the file.
        found: u32,
    },
    /// The v3 header CRC does not match the header bytes: one of the first
    /// 48 bytes was corrupted, so none of the header's dimensions or section
    /// checksums can be trusted. (v2 headers carry no such check — see
    /// [`PersistError::Malformed`] diagnostics on the v2 path.)
    HeaderChecksumMismatch {
        /// `crc_header` stored in the file.
        stored: u32,
        /// CRC-32 computed over header bytes 0..44 as read.
        computed: u32,
    },
    /// A v3 header passed its CRC but declares something no writer produces
    /// (impossible dimensions, a non-zero shard checksum on an unsharded
    /// file): the file was written wrong, not corrupted in transit.
    HeaderMalformed(String),
    /// The file is shorter than its header claims — an interrupted write or
    /// a truncated copy.
    Truncated {
        /// Bytes the header (or the fixed header size) requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file is longer than its header claims; the surplus would be
    /// silently ignored data, so it is rejected.
    TrailingBytes {
        /// Surplus bytes after the declared payload.
        extra: usize,
    },
    /// The v1 whole-payload checksum does not match — the bytes were
    /// corrupted after the header was written (bit rot, torn write, manual
    /// edit).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// A v2 per-section checksum does not match; the named section was
    /// corrupted after the header was written.
    SectionChecksumMismatch {
        /// The section whose bytes disagree with the header.
        section: Section,
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the section actually read.
        computed: u32,
    },
    /// A v2 padding byte (section tail padding or the four reserved bytes
    /// inside an entry record) is not zero — a forged or hand-edited file,
    /// since every padding flip in a written file already fails its section
    /// checksum.
    NonZeroPadding {
        /// Absolute file offset of the offending byte.
        offset: usize,
    },
    /// The bytes are a valid-looking v2 file but cannot back a zero-copy
    /// view in this process: the buffer's base address is not 8-byte
    /// aligned, or the host is big-endian (v2 sections are reinterpreted in
    /// place as little-endian words). Load through [`from_bytes`] instead,
    /// or hand [`view_bytes`] an [`AlignedBytes`] / mmap-backed buffer.
    Unviewable {
        /// What the buffer or host lacks.
        reason: &'static str,
    },
    /// The file's format version predates the aligned v2 layout: it can only
    /// be loaded through the copying path ([`from_bytes`] / [`load`]).
    NotZeroCopy {
        /// Version stamped in the file.
        version: u32,
    },
    /// The bytes checksum correctly but violate a semantic invariant
    /// (non-permutation ranking, non-monotonic offsets, unsorted or
    /// out-of-range hubs) — a writer bug or a forged file.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a .chl index file: expected magic {MAGIC:?}, found {found:?}"
            ),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported .chl format version {found} (this reader understands up to {VERSION})"
            ),
            PersistError::UnsupportedFlags { found } => write!(
                f,
                "unsupported .chl flags {found:#010x} for this format version"
            ),
            PersistError::HeaderChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt .chl header: stored header checksum {stored:#010x}, computed {computed:#010x} \
                 — the header itself was damaged, none of its fields can be trusted"
            ),
            PersistError::HeaderMalformed(msg) => {
                write!(f, "malformed .chl header: {msg}")
            }
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated .chl file: expected {expected} bytes, found {found}"
            ),
            PersistError::TrailingBytes { extra } => {
                write!(
                    f,
                    ".chl file has {extra} trailing bytes beyond its declared payload"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt .chl payload: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "corrupt .chl {section} section: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::NonZeroPadding { offset } => write!(
                f,
                "malformed .chl file: padding byte at offset {offset} is not zero"
            ),
            PersistError::Unviewable { reason } => write!(
                f,
                "buffer cannot back a zero-copy .chl view ({reason}); load it with the copying reader instead"
            ),
            PersistError::NotZeroCopy { version } => write!(
                f,
                ".chl format v{version} predates the aligned zero-copy layout (v{VERSION}): \
                 load it with the copying reader or rebuild the index"
            ),
            PersistError::Malformed(msg) => write!(f, "malformed .chl index: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The checksums a `.chl` header stores: one CRC over the whole payload in
/// v1, one CRC per section in v2 (the incremental mode — each section can be
/// produced and verified independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checksums {
    /// v1: a single CRC-32 over every byte after the header.
    WholePayload(u32),
    /// v2: one CRC-32 per section, each covering the section's data bytes
    /// and its tail padding.
    PerSection {
        /// CRC-32 of the ranking section.
        ranking: u32,
        /// CRC-32 of the offsets section.
        offsets: u32,
        /// CRC-32 of the entries section.
        entries: u32,
    },
}

/// The fixed-size header of a `.chl` file, readable without loading the
/// payload (used by `chl inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Format version stamped in the file.
    pub version: u32,
    /// Number of vertices the index covers.
    pub num_vertices: u64,
    /// Total number of label entries (decoded count, whatever the
    /// encoding).
    pub num_entries: u64,
    /// The flags word (`0` for v1 files); see [`FLAG_COMPRESSED_ENTRIES`]
    /// and [`FLAG_SHARDED`].
    pub flags: u32,
    /// The stored payload checksum(s).
    pub checksums: Checksums,
    /// v3: CRC-32 of the shard section (`0` when unsharded or pre-v3).
    pub crc_shard: u32,
    /// v3: CRC-32 of header bytes 0..44 (`0` for pre-v3 versions).
    pub crc_header: u32,
}

impl FileHeader {
    /// Size of this header on disk, in bytes (version-dependent).
    pub fn header_len(&self) -> usize {
        match self.version {
            VERSION_V1 => HEADER_LEN_V1,
            VERSION_V2 => HEADER_LEN_V2,
            _ => HEADER_LEN_V3,
        }
    }

    /// `true` when the entries section is delta+varint compressed.
    pub fn is_compressed(&self) -> bool {
        self.flags & FLAG_COMPRESSED_ENTRIES != 0
    }

    /// `true` when the file holds one shard of a QDOL layout (v3 only).
    pub fn is_sharded(&self) -> bool {
        self.flags & FLAG_SHARDED != 0
    }

    /// `true` when the file carries the per-entry parent section that
    /// enables shortest-path reconstruction (v3 only).
    pub fn is_paths(&self) -> bool {
        self.flags & FLAG_PATHS != 0
    }

    /// Total file size in bytes implied by the header's dimensions, or
    /// `None` when it cannot be known from the header alone — compressed
    /// files are self-describing (the encoded length lives in the skip
    /// table), sharded files carry a self-describing owned set, and hostile
    /// dimensions can overflow.
    pub fn expected_file_len(&self) -> Option<usize> {
        if self.is_compressed() || self.is_sharded() {
            return None;
        }
        let payload = match self.version {
            VERSION_V1 => expected_payload_len_v1(self.num_vertices, self.num_entries)?,
            _ => expected_payload_len_v2(self.num_vertices, self.num_entries)?,
        };
        let paths = if self.is_paths() {
            usize::try_from(pad_to_align(
                8u64.checked_add(self.num_entries.checked_mul(4)?)?,
            )?)
            .ok()?
        } else {
            0
        };
        payload.checked_add(self.header_len())?.checked_add(paths)
    }

    /// On-disk size of the entries section in bytes, derived from the header
    /// and the actual file length: the storage queries really touch. For
    /// flat encodings this is `m` times the record size; for compressed
    /// files it is everything between the offsets section and the optional
    /// shard section (skip table, blob and padding). Saturating — hostile
    /// headers must not wrap.
    pub fn entries_section_len(&self, file_len: u64) -> u64 {
        let n = self.num_vertices;
        let m = self.num_entries;
        match self.version {
            VERSION_V1 => m.saturating_mul(ENTRY_LEN_V1 as u64),
            _ if self.is_compressed() => {
                let before_entries = (self.header_len() as u64)
                    .saturating_add(pad_to_align(n.saturating_mul(4)).unwrap_or(u64::MAX))
                    .saturating_add(n.saturating_add(1).saturating_mul(8));
                // A sharded or path-carrying file's entries section ends
                // where the next section begins; without loading those
                // sections the best header-only answer is the span up to end
                // of file, which is exact for plain compressed files.
                file_len.saturating_sub(before_entries)
            }
            _ => m.saturating_mul(ENTRY_LEN_V2 as u64),
        }
    }

    /// In-memory size of the decoded entries in bytes (`m * 16`), the
    /// denominator of the compression ratio.
    pub fn decoded_entries_len(&self) -> u64 {
        self.num_entries.saturating_mul(ENTRY_LEN_V2 as u64)
    }
}

// --- CRC-32 (IEEE 802.3), table-driven; small enough to vendor rather than
// --- pull a dependency the offline build cannot fetch.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, the checksum the `.chl` header stores.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Rounds `len` up to the next multiple of [`SECTION_ALIGN`], `None` on
/// overflow.
fn pad_to_align(len: u64) -> Option<u64> {
    len.checked_next_multiple_of(SECTION_ALIGN as u64)
}

// --- LEB128 varints (the compressed entries encoding) --------------------

/// Appends `x` to `buf` as a canonical (minimal-length) little-endian
/// base-128 varint: 7 value bits per byte, high bit = continuation.
pub(crate) fn write_uvarint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Fast LEB128 reader for *validated* streams: advances `pos` and returns
/// the value, or `None` past the end. Canonicality was enforced at load
/// time, so this reader does not re-check it.
#[inline]
pub(crate) fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Strict LEB128 reader for the validation pass: rejects truncation,
/// encodings longer than a u64 can hold, and overlong (non-minimal)
/// encodings. Canonicality is what makes decode → re-encode byte-stable.
fn read_uvarint_canonical(bytes: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err("truncated varint");
        };
        *pos += 1;
        if shift > 63 || (shift == 63 && (byte & 0x7F) > 1) {
            return Err("varint overflows u64");
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err("overlong varint encoding");
            }
            return Ok(x);
        }
        shift += 7;
    }
}

/// v1 payload size implied by the header dimensions, `None` on overflow
/// (which can only arise from a corrupt or hostile header).
fn expected_payload_len_v1(n: u64, m: u64) -> Option<usize> {
    let ranking = n.checked_mul(4)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let entries = m.checked_mul(ENTRY_LEN_V1 as u64)?;
    let total = ranking.checked_add(offsets)?.checked_add(entries)?;
    usize::try_from(total).ok()
}

/// v2 payload size (all sections padded) implied by the header dimensions.
fn expected_payload_len_v2(n: u64, m: u64) -> Option<usize> {
    let ranking = pad_to_align(n.checked_mul(4)?)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let entries = m.checked_mul(ENTRY_LEN_V2 as u64)?;
    let total = ranking.checked_add(offsets)?.checked_add(entries)?;
    usize::try_from(total).ok()
}

/// Byte ranges of the compressed entries section's two halves.
#[derive(Debug, Clone)]
struct CompressedLayout {
    /// The per-vertex skip table: `(n + 1)` u64 byte offsets into the blob.
    skip: Range<usize>,
    /// The encoded blob's data bytes, excluding tail padding.
    blob_data: Range<usize>,
}

/// Byte ranges of the v3 path section (per-entry parent records).
#[derive(Debug, Clone)]
struct PathsLayout {
    /// The `m` u32 parent records, excluding the prelude and tail padding.
    data: Range<usize>,
    /// Everything `crc_paths` covers: the parents array plus tail padding
    /// (the 8-byte prelude itself is excluded — it holds the CRC).
    payload: Range<usize>,
    /// Whole section including the prelude; starts at the section boundary.
    section: Range<usize>,
}

/// Byte ranges of the trailing v3 shard section.
#[derive(Debug, Clone)]
struct ShardLayout {
    /// The 16-byte prelude plus the owned array, excluding tail padding.
    data: Range<usize>,
    /// Whole shard section including tail padding; `crc_shard` covers this.
    section: Range<usize>,
}

/// Absolute byte ranges of the sections within a v2/v3 file of validated
/// length. Section starts and lengths are all multiples of
/// [`SECTION_ALIGN`], so a section start in an 8-byte-aligned buffer is
/// itself 8-byte aligned.
#[derive(Debug, Clone)]
struct LayoutV2 {
    n: usize,
    m: usize,
    /// Ranking data bytes (`n * 4`), excluding tail padding.
    ranking_data: Range<usize>,
    /// Full ranking section including tail padding.
    ranking_section: Range<usize>,
    offsets: Range<usize>,
    /// The whole entries section — `m * 16` records when flat, skip table +
    /// blob + padding when compressed. `crc_entries` covers exactly this.
    entries: Range<usize>,
    /// Sub-layout of the entries section when [`FLAG_COMPRESSED_ENTRIES`]
    /// is set.
    compressed: Option<CompressedLayout>,
    /// The path section when [`FLAG_PATHS`] is set (v3 only).
    paths: Option<PathsLayout>,
    /// The trailing shard section when [`FLAG_SHARDED`] is set (v3 only).
    shard: Option<ShardLayout>,
}

/// Computes the v2/v3 section layout from header dimensions and checks the
/// buffer length matches exactly. Compressed files are self-describing —
/// the encoded blob length is read from the last skip-table slot — and so
/// is the shard section via its owned count, which is why this takes the
/// whole buffer rather than just its length.
fn layout_v2(
    n64: u64,
    m64: u64,
    version: u32,
    compressed: bool,
    paths: bool,
    sharded: bool,
    data: &[u8],
) -> Result<LayoutV2, PersistError> {
    // In v3 the header passed its CRC before we got here, so impossible
    // dimensions are provably the writer's doing; in v2 they could just as
    // well be header corruption (no CRC covers them), which the v2 load
    // paths fold into the message.
    let header_len = if version == VERSION_V2 {
        HEADER_LEN_V2
    } else {
        HEADER_LEN_V3
    };
    let dims_err = move |msg: String| {
        if version == VERSION_V2 {
            PersistError::Malformed(msg)
        } else {
            PersistError::HeaderMalformed(msg)
        }
    };
    if n64 > VertexId::MAX as u64 {
        return Err(dims_err(format!(
            "{n64} vertices exceeds the u32 vertex id space"
        )));
    }
    let overflow = move || {
        dims_err(format!(
            "declared dimensions (n = {n64}, m = {m64}) overflow the addressable size"
        ))
    };
    let data_len = data.len();
    let ranking_len =
        pad_to_align(n64.checked_mul(4).ok_or_else(overflow)?).ok_or_else(overflow)?;
    let offsets_len = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(overflow)?;
    let prefix = (header_len as u64)
        .checked_add(ranking_len)
        .and_then(|x| x.checked_add(offsets_len))
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(overflow)?;

    let (entries_end, compressed_layout) = if compressed {
        // Fixed prefix first: header, ranking, offsets, skip table. Only
        // once those fit can the blob length be read out of the skip table.
        let skip_len = offsets_len as usize;
        let fixed = prefix.checked_add(skip_len).ok_or_else(overflow)?;
        if data_len < fixed {
            return Err(PersistError::Truncated {
                expected: fixed,
                found: data_len,
            });
        }
        let blob_len = u64::from_le_bytes(data[fixed - 8..fixed].try_into().expect("8 bytes"));
        let blob_padded = pad_to_align(blob_len)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| {
                PersistError::Malformed(format!(
                    "declared encoded blob length {blob_len} overflows the addressable size"
                ))
            })?;
        let entries_end = fixed.checked_add(blob_padded).ok_or_else(overflow)?;
        // The flat arm bounds m against the file length via `m * 16`; the
        // compressed equivalent is that every encoded entry costs at least
        // two bytes (a one-byte hub-gap varint plus a one-byte distance
        // varint). A forged header whose m cannot fit in the blob must be
        // rejected here, before any loader allocates m-sized buffers.
        if m64.checked_mul(2).is_none_or(|min| min > blob_len) {
            return Err(dims_err(format!(
                "declared entry count {m64} cannot fit in a {blob_len}-byte encoded blob"
            )));
        }
        let layout = CompressedLayout {
            skip: prefix..fixed,
            blob_data: fixed..fixed + blob_len as usize,
        };
        (entries_end, Some(layout))
    } else {
        let entries_len = m64
            .checked_mul(ENTRY_LEN_V2 as u64)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(overflow)?;
        (prefix.checked_add(entries_len).ok_or_else(overflow)?, None)
    };

    // The path section follows the entries: an 8-byte CRC prelude plus one
    // u32 parent per label entry, padded to the section alignment.
    let (paths_end, paths_layout) = if paths {
        let data_start = entries_end.checked_add(8).ok_or_else(overflow)?;
        let data_end = m64
            .checked_mul(4)
            .and_then(|x| u64::try_from(data_start).ok()?.checked_add(x))
            .ok_or_else(overflow)?;
        let section_end = pad_to_align(data_end)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(overflow)?;
        let data_end = data_end as usize;
        let layout = PathsLayout {
            data: data_start..data_end,
            payload: data_start..section_end,
            section: entries_end..section_end,
        };
        (section_end, Some(layout))
    } else {
        (entries_end, None)
    };

    // The shard section trails the entries (and path section, when present)
    // and is self-describing via its owned count, read once the fixed
    // 16-byte prelude is known to fit.
    let (expected, shard_layout) = if sharded {
        let fixed = paths_end.checked_add(16).ok_or_else(overflow)?;
        if data_len < fixed {
            return Err(PersistError::Truncated {
                expected: fixed,
                found: data_len,
            });
        }
        let owned_count = match data.get(fixed - 4..fixed) {
            Some(&[a, b, c, d]) => u32::from_le_bytes([a, b, c, d]) as usize,
            // Unreachable: `data_len >= fixed` was just checked.
            _ => return Err(overflow()),
        };
        let data_end = owned_count
            .checked_mul(4)
            .and_then(|x| fixed.checked_add(x))
            .ok_or_else(overflow)?;
        let section_end = pad_to_align(data_end as u64)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(overflow)?;
        let layout = ShardLayout {
            data: paths_end..data_end,
            section: paths_end..section_end,
        };
        (section_end, Some(layout))
    } else {
        (paths_end, None)
    };
    if data_len < expected {
        return Err(PersistError::Truncated {
            expected,
            found: data_len,
        });
    }
    if data_len > expected {
        return Err(PersistError::TrailingBytes {
            extra: data_len - expected,
        });
    }
    let n = n64 as usize;
    let m = m64 as usize;
    let ranking_start = header_len;
    let ranking_data_end = ranking_start + n * 4;
    let ranking_end = ranking_start + ranking_len as usize;
    let offsets_end = ranking_end + (n + 1) * 8;
    debug_assert_eq!(offsets_end, prefix);
    Ok(LayoutV2 {
        n,
        m,
        ranking_data: ranking_start..ranking_data_end,
        ranking_section: ranking_start..ranking_end,
        offsets: ranking_end..offsets_end,
        entries: offsets_end..entries_end,
        compressed: compressed_layout,
        paths: paths_layout,
        shard: shard_layout,
    })
}

/// Verifies the per-section checksums and that every padding byte —
/// section tail padding and the reserved word inside each entry record — is
/// zero. This is the whole-payload integrity check of v2/v3, done one
/// section at a time.
fn check_sections_v2(
    data: &[u8],
    header: &FileHeader,
    layout: &LayoutV2,
) -> Result<(), PersistError> {
    let Checksums::PerSection {
        ranking,
        offsets,
        entries,
    } = header.checksums
    else {
        unreachable!("v2/v3 headers always parse per-section checksums");
    };
    if let Some(p) = &layout.paths {
        // The section's CRC lives in its own prelude (the fixed v3 header
        // has no room for a fourth section CRC without a version bump).
        let mut cur = Cursor::new(data);
        cur.seek(p.section.start);
        let stored = cur.get_u32();
        let computed = crc32(&data[p.payload.clone()]);
        if computed != stored {
            return Err(PersistError::SectionChecksumMismatch {
                section: Section::Paths,
                stored,
                computed,
            });
        }
        let reserved = &data[p.section.start + 4..p.section.start + 8];
        if let Some(i) = reserved.iter().position(|&b| b != 0) {
            return Err(PersistError::NonZeroPadding {
                offset: p.section.start + 4 + i,
            });
        }
        let padding = data.get(p.data.end..p.payload.end).unwrap_or(&[]);
        if let Some(i) = padding.iter().position(|&b| b != 0) {
            return Err(PersistError::NonZeroPadding {
                offset: p.data.end + i,
            });
        }
    }
    if let Some(s) = &layout.shard {
        let computed = crc32(&data[s.section.clone()]);
        if computed != header.crc_shard {
            return Err(PersistError::SectionChecksumMismatch {
                section: Section::Shard,
                stored: header.crc_shard,
                computed,
            });
        }
        let padding = data.get(s.data.end..s.section.end).unwrap_or(&[]);
        if let Some(i) = padding.iter().position(|&b| b != 0) {
            return Err(PersistError::NonZeroPadding {
                offset: s.data.end + i,
            });
        }
    }
    for (section, range, stored) in [
        (Section::Ranking, &layout.ranking_section, ranking),
        (Section::Offsets, &layout.offsets, offsets),
        (Section::Entries, &layout.entries, entries),
    ] {
        let computed = crc32(&data[range.clone()]);
        if computed != stored {
            return Err(PersistError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            });
        }
    }
    if let Some(i) = data[layout.ranking_data.end..layout.ranking_section.end]
        .iter()
        .position(|&b| b != 0)
    {
        return Err(PersistError::NonZeroPadding {
            offset: layout.ranking_data.end + i,
        });
    }
    match &layout.compressed {
        None => {
            // Bytes 4..8 of every 16-byte entry record mirror LabelEntry's
            // struct padding and must be zero, so serialization stays
            // deterministic and a forged record cannot smuggle data the
            // view cannot see.
            let entry_bytes = &data[layout.entries.clone()];
            for (rec, chunk) in entry_bytes.chunks_exact(ENTRY_LEN_V2).enumerate() {
                if let Some(i) = chunk[4..8].iter().position(|&b| b != 0) {
                    return Err(PersistError::NonZeroPadding {
                        offset: layout.entries.start + rec * ENTRY_LEN_V2 + 4 + i,
                    });
                }
            }
        }
        Some(c) => {
            // The encoded blob's tail padding must be zero (the skip table
            // is 8-byte sized by construction and carries no padding).
            if let Some(i) = data[c.blob_data.end..layout.entries.end]
                .iter()
                .position(|&b| b != 0)
            {
                return Err(PersistError::NonZeroPadding {
                    offset: c.blob_data.end + i,
                });
            }
        }
    }
    Ok(())
}

/// Checks that `order` lists every vertex in `0..order.len()` exactly once.
fn check_permutation(order: &[VertexId]) -> Result<(), PersistError> {
    let n = order.len();
    let mut seen = vec![false; n];
    for &v in order {
        let vi = v as usize;
        if vi >= n {
            return Err(PersistError::Malformed(format!(
                "ranking section: vertex {v} out of range"
            )));
        }
        if seen[vi] {
            return Err(PersistError::Malformed(format!(
                "ranking section: vertex {v} appears twice in the ranking"
            )));
        }
        seen[vi] = true;
    }
    Ok(())
}

/// The offsets-array invariants shared by every load path and encoding:
/// start at 0, rise monotonically, end at `m`.
fn validate_offsets(n: usize, offsets: &[u64], m64: u64) -> Result<(), PersistError> {
    debug_assert_eq!(offsets.len(), n + 1);
    if offsets[0] != 0 {
        return Err(PersistError::Malformed(format!(
            "offsets must start at 0, found {}",
            offsets[0]
        )));
    }
    if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
        return Err(PersistError::Malformed(format!(
            "offsets must be monotonically non-decreasing, found {} before {}",
            w[0], w[1]
        )));
    }
    if offsets[n] != m64 {
        return Err(PersistError::Malformed(format!(
            "final offset {} disagrees with the declared entry count {m64}",
            offsets[n]
        )));
    }
    Ok(())
}

/// The per-entry invariants of the flat encoding: every vertex's entries
/// strictly hub-sorted with in-range hub positions. (The compressed decoder
/// enforces the same invariants inline while it decodes.)
fn validate_hub_sort(
    n: usize,
    offsets: &[u64],
    entries: &[LabelEntry],
) -> Result<(), PersistError> {
    for v in 0..n {
        let slice = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for e in slice {
            if e.hub as usize >= n {
                return Err(PersistError::Malformed(format!(
                    "vertex {v} has a label with hub position {} outside 0..{n}",
                    e.hub
                )));
            }
            if prev.is_some_and(|p| p >= e.hub) {
                return Err(PersistError::Malformed(format!(
                    "labels of vertex {v} are not strictly hub-sorted"
                )));
            }
            prev = Some(e.hub);
        }
    }
    Ok(())
}

/// The CSR invariants of the flat encoding in one call. The copying loaders
/// call the two halves around [`Ranking`] construction (which already
/// validates the permutation), so the order array is only scanned once.
fn validate_csr(
    n: usize,
    offsets: &[u64],
    entries: &[LabelEntry],
    m64: u64,
) -> Result<(), PersistError> {
    validate_offsets(n, offsets, m64)?;
    validate_hub_sort(n, offsets, entries)
}

/// Validates a compressed entries section against already-validated CSR
/// offsets: the skip table starts at 0, rises monotonically and ends at the
/// blob length; every vertex's run decodes to exactly its declared label
/// count with canonical varints, strictly increasing in-range hubs, and
/// consumes exactly its skip-table byte span. When `sink` is given the
/// decoded entries are appended to it (the copying loader); the view path
/// validates without materializing anything. When `parents` is given (the
/// zero-copy path of a file with a path section), each decoded entry is
/// checked against its parent record in the same streaming pass — the
/// entries concatenate in vertex order, so the running entry counter is the
/// record's global index.
fn validate_compressed_entries(
    skip: &[u64],
    blob: &[u8],
    offsets: &[u64],
    parents: Option<&[u32]>,
    mut sink: Option<&mut Vec<LabelEntry>>,
) -> Result<(), PersistError> {
    let n = offsets.len() - 1;
    debug_assert_eq!(skip.len(), n + 1);
    if skip[0] != 0 {
        return Err(PersistError::Malformed(format!(
            "skip table must start at 0, found {}",
            skip[0]
        )));
    }
    if let Some(w) = skip.windows(2).find(|w| w[0] > w[1]) {
        return Err(PersistError::Malformed(format!(
            "skip table must be monotonically non-decreasing, found {} before {}",
            w[0], w[1]
        )));
    }
    // layout_v2 sized the blob from skip[n], so this can only trip when the
    // caller assembled the slices itself.
    if skip[n] != blob.len() as u64 {
        return Err(PersistError::Malformed(format!(
            "final skip offset {} disagrees with the encoded blob length {}",
            skip[n],
            blob.len()
        )));
    }
    let mut entry_index = 0usize;
    for v in 0..n {
        let run = &blob[skip[v] as usize..skip[v + 1] as usize];
        let count = (offsets[v + 1] - offsets[v]) as usize;
        let mut pos = 0usize;
        let mut prev: Option<u32> = None;
        let malformed =
            |msg: &str| PersistError::Malformed(format!("compressed run of vertex {v}: {msg}"));
        for _ in 0..count {
            let gap = read_uvarint_canonical(run, &mut pos).map_err(&malformed)?;
            let dist = read_uvarint_canonical(run, &mut pos).map_err(&malformed)?;
            let hub64 = match prev {
                None => gap,
                Some(p) => {
                    if gap == 0 {
                        return Err(malformed("zero hub gap (labels must be strictly sorted)"));
                    }
                    u64::from(p)
                        .checked_add(gap)
                        .ok_or_else(|| malformed("hub gap overflows the u32 rank position space"))?
                }
            };
            if hub64 >= n as u64 {
                return Err(PersistError::Malformed(format!(
                    "vertex {v} has a label with hub position {hub64} outside 0..{n}"
                )));
            }
            let hub = hub64 as u32;
            if let Some(parents) = parents {
                let p = parents
                    .get(entry_index)
                    .copied()
                    .ok_or_else(|| malformed("more label entries than parent records"))?;
                check_parent_entry(n, v as VertexId, dist, p)?;
            }
            entry_index += 1;
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(LabelEntry::new(hub, dist));
            }
            prev = Some(hub);
        }
        if pos != run.len() {
            return Err(malformed("trailing bytes beyond the declared label count"));
        }
    }
    Ok(())
}

/// Serializes `index` into the current (v3) `.chl` byte format with the
/// default options (flat entries).
pub fn to_bytes(index: &FlatIndex) -> Vec<u8> {
    to_bytes_with(index, &SaveOptions::default())
}

/// Delta+varint encodes every label run, returning the per-vertex skip
/// table (`skip[v]` = byte offset of vertex `v`'s run; `skip[n]` = blob
/// length) and the encoded blob.
fn encode_entries(offsets: &[u64], entries: &[LabelEntry]) -> (Vec<u64>, Vec<u8>) {
    let n = offsets.len() - 1;
    let mut skip = Vec::with_capacity(n + 1);
    // Labels average a few bytes each once delta+varint encoded.
    let mut blob = Vec::with_capacity(entries.len() * 4);
    skip.push(0);
    for v in 0..n {
        let run = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for e in run {
            let gap = match prev {
                None => u64::from(e.hub),
                Some(p) => u64::from(e.hub - p),
            };
            write_uvarint(&mut blob, gap);
            write_uvarint(&mut blob, e.dist);
            prev = Some(e.hub);
        }
        skip.push(blob.len() as u64);
    }
    (skip, blob)
}

/// Serializes `index` into the `.chl` byte format under `options`:
/// flat 16-byte entry records by default, the delta+varint compressed
/// entries section (flags bit 0) when `options.compress` is set, the v3
/// layout (header CRC, optional shard section) unless `options.version`
/// selects v2. An index carrying a [`ShardSpec`] always serializes as v3.
pub fn to_bytes_with(index: &FlatIndex, options: &SaveOptions) -> Vec<u8> {
    let n = index.num_vertices();
    let m = index.total_labels();
    let shard = index.shard();
    let parents = index.parents();
    let version = options.effective_version(shard.is_some() || parents.is_some());
    let header_len = if version == VERSION_V2 {
        HEADER_LEN_V2
    } else {
        HEADER_LEN_V3
    };
    // Encoding up front makes the exact output size computable either way,
    // so the buffer never reallocates mid-write.
    let encoded = options
        .compress
        .then(|| encode_entries(index.offsets(), index.entries()));
    let shard_len = shard.map_or(0, |s| {
        pad_to_align(16 + s.owned.len() as u64 * 4).expect("index fits in memory") as usize
    });
    let paths_len = parents.map_or(0, |p| {
        pad_to_align(8 + p.len() as u64 * 4).expect("index fits in memory") as usize
    });
    let capacity = match &encoded {
        Some((skip, blob)) => {
            let prefix =
                pad_to_align((n as u64) * 4).expect("index fits in memory") as usize + (n + 1) * 8;
            let entries_len = skip.len() * 8
                + pad_to_align(blob.len() as u64).expect("index fits in memory") as usize;
            header_len + prefix + entries_len + paths_len + shard_len
        }
        None => {
            header_len
                + expected_payload_len_v2(n as u64, m as u64)
                    .expect("in-memory index fits in memory")
                + paths_len
                + shard_len
        }
    };
    let mut buf = Vec::with_capacity(capacity);

    let mut flags = if options.compress {
        FLAG_COMPRESSED_ENTRIES
    } else {
        0
    };
    if shard.is_some() {
        flags |= FLAG_SHARDED;
    }
    if parents.is_some() {
        flags |= FLAG_PATHS;
    }
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&flags.to_le_bytes());
    // CRC placeholders: three section CRCs (v2), plus crc_shard and
    // crc_header in v3.
    buf.resize(header_len, 0);

    let ranking_start = buf.len();
    for &v in index.ranking().order() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    while !buf.len().is_multiple_of(SECTION_ALIGN) {
        buf.push(0);
    }
    let offsets_start = buf.len();
    for &off in index.offsets() {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    let entries_start = buf.len();
    if let Some((skip, blob)) = &encoded {
        for &s in skip {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(blob);
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
    } else {
        for e in index.entries() {
            buf.extend_from_slice(&e.hub.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&e.dist.to_le_bytes());
        }
    }
    let paths_start = buf.len();
    if let Some(parents) = parents {
        // Prelude: the section CRC (patched below, like the header CRCs)
        // plus a reserved word held zero.
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        for &p in parents {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
    }
    let shard_start = buf.len();
    if let Some(s) = shard {
        buf.extend_from_slice(&s.shard_id.to_le_bytes());
        buf.extend_from_slice(&s.shard_count.to_le_bytes());
        buf.extend_from_slice(&s.zeta.to_le_bytes());
        buf.extend_from_slice(&(s.owned.len() as u32).to_le_bytes());
        for &v in &s.owned {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
    }

    // Each section is checksummed independently — a writer streaming
    // sections to disk can finalize each CRC as the section completes. The
    // v3 header CRC goes last: it covers the section CRCs themselves.
    let crc_ranking = crc32(&buf[ranking_start..offsets_start]);
    let crc_offsets = crc32(&buf[offsets_start..entries_start]);
    let crc_entries = crc32(&buf[entries_start..paths_start]);
    buf[28..32].copy_from_slice(&crc_ranking.to_le_bytes());
    buf[32..36].copy_from_slice(&crc_offsets.to_le_bytes());
    buf[36..40].copy_from_slice(&crc_entries.to_le_bytes());
    if parents.is_some() {
        let crc_paths = crc32(&buf[paths_start + 8..shard_start]);
        buf[paths_start..paths_start + 4].copy_from_slice(&crc_paths.to_le_bytes());
    }
    if version != VERSION_V2 {
        let crc_shard = if shard.is_some() {
            crc32(&buf[shard_start..])
        } else {
            0
        };
        buf[40..44].copy_from_slice(&crc_shard.to_le_bytes());
        let crc_header = crc32(&buf[..HEADER_LEN_V3 - 4]);
        buf[44..48].copy_from_slice(&crc_header.to_le_bytes());
    }
    buf
}

/// Serializes `index` into the legacy v1 packed format. Kept for
/// compatibility tests and for producing files older readers understand; new
/// files should use [`to_bytes`].
pub fn to_bytes_v1(index: &FlatIndex) -> Vec<u8> {
    let n = index.num_vertices();
    let m = index.total_labels();
    let payload_len =
        expected_payload_len_v1(n as u64, m as u64).expect("in-memory index fits in memory");
    let mut buf = Vec::with_capacity(HEADER_LEN_V1 + payload_len);

    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION_V1.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder

    for &v in index.ranking().order() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for &off in index.offsets() {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    for e in index.entries() {
        buf.extend_from_slice(&e.hub.to_le_bytes());
        buf.extend_from_slice(&e.dist.to_le_bytes());
    }

    let crc = crc32(&buf[HEADER_LEN_V1..]);
    buf[24..28].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Little-endian cursor over a byte slice. All reads are bounds-checked by
/// the caller having verified the total length up front.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        s
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("length checked"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("length checked"))
    }
}

/// Parses just the fixed header, validating magic, version, flags and (on
/// v3) the header CRC, but not the payload. `data` must hold the full
/// header for its version.
pub fn parse_header(data: &[u8]) -> Result<FileHeader, PersistError> {
    if data.len() < 8 {
        return Err(PersistError::Truncated {
            expected: HEADER_LEN_V1,
            found: data.len(),
        });
    }
    let mut cur = Cursor::new(data);
    let magic: [u8; 4] = cur.take(4).try_into().expect("length checked");
    if &magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = cur.get_u32();
    let header_len = match version {
        VERSION_V1 => HEADER_LEN_V1,
        VERSION_V2 => HEADER_LEN_V2,
        VERSION => HEADER_LEN_V3,
        found => return Err(PersistError::UnsupportedVersion { found }),
    };
    if data.len() < header_len {
        return Err(PersistError::Truncated {
            expected: header_len,
            found: data.len(),
        });
    }
    let num_vertices = cur.get_u64();
    let num_entries = cur.get_u64();
    let (flags, checksums, crc_shard, crc_header) = if version == VERSION_V1 {
        (0, Checksums::WholePayload(cur.get_u32()), 0, 0)
    } else {
        let flags = cur.get_u32();
        let checksums = Checksums::PerSection {
            ranking: cur.get_u32(),
            offsets: cur.get_u32(),
            entries: cur.get_u32(),
        };
        let (crc_shard, crc_header) = if version == VERSION_V2 {
            (0, 0)
        } else {
            (cur.get_u32(), cur.get_u32())
        };
        // The v3 header CRC is verified before any other field is
        // interpreted, so a damaged flags or dimensions byte reports as
        // header corruption instead of whatever downstream error the
        // garbage value happens to trip.
        if version != VERSION_V2 {
            let computed = crc32(&data[..HEADER_LEN_V3 - 4]);
            if computed != crc_header {
                return Err(PersistError::HeaderChecksumMismatch {
                    stored: crc_header,
                    computed,
                });
            }
        }
        if flags & !flags_known(version) != 0 {
            return Err(PersistError::UnsupportedFlags { found: flags });
        }
        // From here on the header is CRC-proven (v3), so inconsistencies
        // between its fields are writer bugs, not corruption.
        if version != VERSION_V2 && flags & FLAG_SHARDED == 0 && crc_shard != 0 {
            return Err(PersistError::HeaderMalformed(format!(
                "crc_shard is {crc_shard:#010x} but the sharded flag is clear"
            )));
        }
        (flags, checksums, crc_shard, crc_header)
    };
    Ok(FileHeader {
        version,
        num_vertices,
        num_entries,
        flags,
        checksums,
        crc_shard,
        crc_header,
    })
}

/// Deserializes an index from `.chl` bytes, accepting the current v3
/// layout and legacy v1/v2 files. This is the **copying** path: every
/// section lands in a fresh allocation. For serving without the copy, see
/// [`view_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<FlatIndex, PersistError> {
    let header = parse_header(data)?;
    match header.version {
        VERSION_V1 => from_bytes_v1(data, &header),
        VERSION_V2 => from_bytes_v2(data, &header).map_err(add_v2_header_caveat),
        _ => from_bytes_v2(data, &header),
    }
}

/// Folds the v2 header-trust gap into payload-shaped errors: a v2 header
/// is not covered by any checksum, so a corrupted `n`/`m`/`flags` field
/// surfaces as exactly the length / section-checksum / semantic errors a
/// damaged payload would produce. Spelling that out in the message saves
/// the reader from debugging the payload when the header is the culprit.
/// v3 closes the gap with a real header CRC.
fn add_v2_header_caveat(e: PersistError) -> PersistError {
    match e {
        PersistError::Truncated { .. }
        | PersistError::TrailingBytes { .. }
        | PersistError::SectionChecksumMismatch { .. }
        | PersistError::Malformed(_) => PersistError::Malformed(format!(
            "{e} (note: v2 headers carry no checksum of their own, so a corrupted \
             header field such as n, m or flags produces exactly this class of \
             error; re-save the index as v3 to get a header CRC)"
        )),
        other => other,
    }
}

fn from_bytes_v1(data: &[u8], header: &FileHeader) -> Result<FlatIndex, PersistError> {
    let n64 = header.num_vertices;
    let m64 = header.num_entries;
    if n64 > VertexId::MAX as u64 {
        return Err(PersistError::Malformed(format!(
            "{n64} vertices exceeds the u32 vertex id space"
        )));
    }
    let payload_len = expected_payload_len_v1(n64, m64).ok_or_else(|| {
        PersistError::Malformed(format!(
            "declared dimensions (n = {n64}, m = {m64}) overflow the addressable size"
        ))
    })?;
    let expected = HEADER_LEN_V1 + payload_len;
    if data.len() < expected {
        return Err(PersistError::Truncated {
            expected,
            found: data.len(),
        });
    }
    if data.len() > expected {
        return Err(PersistError::TrailingBytes {
            extra: data.len() - expected,
        });
    }

    let computed = crc32(&data[HEADER_LEN_V1..]);
    let Checksums::WholePayload(stored) = header.checksums else {
        unreachable!("v1 headers always parse a whole-payload checksum");
    };
    if computed != stored {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }

    let n = n64 as usize;
    let m = m64 as usize;
    let mut cur = Cursor::new(data);
    cur.seek(HEADER_LEN_V1);

    let order: Vec<VertexId> = (0..n).map(|_| cur.get_u32()).collect();
    let offsets: Vec<u64> = (0..=n).map(|_| cur.get_u64()).collect();
    let mut entries = Vec::with_capacity(m);
    for _ in 0..m {
        let hub = cur.get_u32();
        let dist = cur.get_u64();
        entries.push(LabelEntry::new(hub, dist));
    }
    let ranking = Ranking::from_order(order, n)
        .map_err(|e| PersistError::Malformed(format!("ranking section: {e}")))?;
    validate_csr(n, &offsets, &entries, m64)?;
    Ok(FlatIndex::from_validated_parts(offsets, entries, ranking))
}

/// Reads the shard section into an owned, validated [`ShardSpec`].
fn read_shard_spec(data: &[u8], s: &ShardLayout, n: u64) -> Result<ShardSpec, PersistError> {
    let mut cur = Cursor::new(data);
    cur.seek(s.data.start);
    let shard_id = cur.get_u32();
    let shard_count = cur.get_u32();
    let zeta = cur.get_u32();
    let owned_count = cur.get_u32() as usize;
    let owned: Vec<VertexId> = (0..owned_count).map(|_| cur.get_u32()).collect();
    validate_shard_meta(shard_id, shard_count, zeta, &owned, n)?;
    Ok(ShardSpec {
        shard_id,
        shard_count,
        zeta,
        owned,
    })
}

fn from_bytes_v2(data: &[u8], header: &FileHeader) -> Result<FlatIndex, PersistError> {
    let layout = layout_v2(
        header.num_vertices,
        header.num_entries,
        header.version,
        header.is_compressed(),
        header.is_paths(),
        header.is_sharded(),
        data,
    )?;
    check_sections_v2(data, header, &layout)?;

    let mut cur = Cursor::new(data);
    cur.seek(layout.ranking_data.start);
    let order: Vec<VertexId> = (0..layout.n).map(|_| cur.get_u32()).collect();
    cur.seek(layout.offsets.start);
    let offsets: Vec<u64> = (0..=layout.n).map(|_| cur.get_u64()).collect();
    let ranking = Ranking::from_order(order, layout.n)
        .map_err(|e| PersistError::Malformed(format!("ranking section: {e}")))?;
    validate_offsets(layout.n, &offsets, header.num_entries)?;
    let shard = match &layout.shard {
        None => None,
        Some(s) => {
            let spec = read_shard_spec(data, s, header.num_vertices)?;
            check_shard_consistency(&spec.owned, &offsets)?;
            Some(spec)
        }
    };
    let entries = match &layout.compressed {
        None => {
            cur.seek(layout.entries.start);
            let mut entries = Vec::with_capacity(layout.m);
            for _ in 0..layout.m {
                let hub = cur.get_u32();
                cur.take(4); // reserved, checked zero above
                let dist = cur.get_u64();
                entries.push(LabelEntry::new(hub, dist));
            }
            validate_hub_sort(layout.n, &offsets, &entries)?;
            entries
        }
        Some(c) => {
            // This is the decode-on-load path: validation and
            // materialization into the flat in-memory layout in one pass.
            cur.seek(c.skip.start);
            let skip: Vec<u64> = (0..=layout.n).map(|_| cur.get_u64()).collect();
            let mut entries = Vec::with_capacity(layout.m);
            validate_compressed_entries(
                &skip,
                &data[c.blob_data.clone()],
                &offsets,
                None,
                Some(&mut entries),
            )?;
            entries
        }
    };
    let parents = match &layout.paths {
        None => None,
        Some(p) => {
            let mut cur = Cursor::new(data);
            cur.seek(p.data.start);
            let parents: Vec<u32> = (0..layout.m).map(|_| cur.get_u32()).collect();
            validate_parents(layout.n, &offsets, &entries, &parents)?;
            Some(parents)
        }
    };
    let index = FlatIndex::from_validated_parts(offsets, entries, ranking);
    let index = match parents {
        Some(parents) => index.with_validated_parents(parents),
        None => index,
    };
    Ok(match shard {
        Some(spec) => index.with_shard(spec)?,
        None => index,
    })
}

// --- Zero-copy views -----------------------------------------------------
//
// On little-endian hosts a validated v2 buffer is reinterpreted in place:
// the ranking section becomes `&[u32]`, the offsets section `&[u64]` and the
// entries section `&[LabelEntry]` (whose #[repr(C)] layout matches the
// 16-byte record exactly). Alignment holds because every section offset is a
// multiple of 8 and the caller's buffer base is checked to be 8-byte
// aligned; every bit pattern of the underlying integers is a valid value, so
// the casts cannot manufacture invalid data — semantic validation happens on
// the cast slices afterwards, exactly as for the copying path.

/// `true` when `data`'s base address allows in-place reinterpretation of
/// 8-byte-aligned sections.
fn is_view_aligned(data: &[u8]) -> bool {
    (data.as_ptr() as usize).is_multiple_of(SECTION_ALIGN)
}

#[cfg(target_endian = "little")]
fn cast_u32s(bytes: &[u8]) -> &[u32] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(4));
    debug_assert!(bytes.len().is_multiple_of(4));
    // SAFETY: the caller (layout_v2 + is_view_aligned) guarantees 4-byte
    // alignment and a length that is a multiple of 4; any bit pattern is a
    // valid u32, and the lifetime is inherited from `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}

#[cfg(target_endian = "little")]
fn cast_u64s(bytes: &[u8]) -> &[u64] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(8));
    debug_assert!(bytes.len().is_multiple_of(8));
    // SAFETY: as for cast_u32s, with 8-byte alignment.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
}

#[cfg(target_endian = "little")]
fn cast_entries(bytes: &[u8]) -> &[LabelEntry] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<LabelEntry>()));
    debug_assert!(bytes.len().is_multiple_of(ENTRY_LEN_V2));
    // SAFETY: LabelEntry is #[repr(C)] with size 16 and align 8 (asserted at
    // compile time in labels.rs); the record layout matches field-for-field,
    // both integer fields accept any bit pattern, and the four bytes the
    // cast lands on LabelEntry's internal padding are never read.
    unsafe {
        std::slice::from_raw_parts(
            bytes.as_ptr() as *const LabelEntry,
            bytes.len() / ENTRY_LEN_V2,
        )
    }
}

/// Validates `.chl` v2/v3 bytes of **either entries encoding** and returns
/// a borrowed [`IndexView`] served straight from `data`: flat files
/// reinterpret their sections in place exactly like [`view_bytes`], while
/// compressed files borrow the skip table and encoded blob and stream-decode
/// the two label runs each query touches. A v3 shard file's identity and
/// owned set are exposed through [`IndexView::shard`]. Validation is the
/// same battery the copying loader runs (length, per-section checksums,
/// padding, semantic invariants — including a full decode pass over every
/// compressed run); the only transient allocation is the permutation-check
/// scratch.
///
/// Requirements beyond [`from_bytes`]: the buffer's base address must be
/// 8-byte aligned (use [`AlignedBytes`] or an mmap, both of which guarantee
/// it) and the host little-endian; otherwise [`PersistError::Unviewable`] is
/// returned. v1 files report [`PersistError::NotZeroCopy`].
pub fn open_view(data: &[u8]) -> Result<IndexView<'_>, PersistError> {
    let header = parse_header(data)?;
    if header.version == VERSION_V1 {
        return Err(PersistError::NotZeroCopy {
            version: header.version,
        });
    }
    if !is_view_aligned(data) {
        return Err(PersistError::Unviewable {
            reason: "base address is not 8-byte aligned",
        });
    }
    #[cfg(not(target_endian = "little"))]
    {
        return Err(PersistError::Unviewable {
            reason: "host is big-endian",
        });
    }
    #[cfg(target_endian = "little")]
    {
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.version,
            header.is_compressed(),
            header.is_paths(),
            header.is_sharded(),
            data,
        )?;
        check_sections_v2(data, &header, &layout)?;
        let order = cast_u32s(&data[layout.ranking_data.clone()]);
        let offsets = cast_u64s(&data[layout.offsets.clone()]);
        check_permutation(order)?;
        validate_offsets(layout.n, offsets, header.num_entries)?;
        let parents = layout
            .paths
            .as_ref()
            .map(|p| cast_u32s(&data[p.data.clone()]));
        let shard = match &layout.shard {
            None => None,
            Some(s) => {
                let mut cur = Cursor::new(data);
                cur.seek(s.data.start);
                let shard_id = cur.get_u32();
                let shard_count = cur.get_u32();
                let zeta = cur.get_u32();
                cur.take(4); // owned_count, implied by the array length
                let owned = cast_u32s(&data[s.data.start + 16..s.data.end]);
                validate_shard_meta(shard_id, shard_count, zeta, owned, header.num_vertices)?;
                check_shard_consistency(owned, offsets)?;
                Some(ShardView {
                    shard_id,
                    shard_count,
                    zeta,
                    owned,
                })
            }
        };
        let view = match &layout.compressed {
            None => {
                let entries = cast_entries(&data[layout.entries.clone()]);
                validate_hub_sort(layout.n, offsets, entries)?;
                if let Some(parents) = parents {
                    validate_parents(layout.n, offsets, entries, parents)?;
                }
                IndexView::flat(FlatView::from_validated_parts(order, offsets, entries))
            }
            Some(c) => {
                let skip = cast_u64s(&data[c.skip.clone()]);
                let blob = &data[c.blob_data.clone()];
                validate_compressed_entries(skip, blob, offsets, parents, None)?;
                IndexView::compressed(CompressedView::from_validated_compressed_parts(
                    order, offsets, skip, blob,
                ))
            }
        };
        let view = match parents {
            Some(parents) => view.with_parents(parents),
            None => view,
        };
        Ok(match shard {
            Some(s) => view.with_shard(s),
            None => view,
        })
    }
}

/// Validates `.chl` v2/v3 bytes and returns a [`FlatView`] whose ranking,
/// offsets and entries slices are **borrowed from `data` in place** — no
/// label byte is copied. This is the flat-only, unsharded strict form of
/// [`open_view`]: a compressed file cannot back a `FlatView` (its entries
/// are not 16-byte records), and a shard file would silently answer
/// `INFINITY` for foreign vertices through the shard-blind `FlatView` API —
/// both report [`PersistError::Unviewable`]; serve them through
/// [`open_view`] / `MmapIndex`, or decode with [`from_bytes`].
pub fn view_bytes(data: &[u8]) -> Result<FlatView<'_>, PersistError> {
    let view = open_view(data)?;
    if view.shard().is_some() {
        return Err(PersistError::Unviewable {
            reason: "file is one shard of a sharded index; serve it through \
                     open_view / MmapIndex so foreign vertices stay typed",
        });
    }
    match view.storage {
        StorageView::Flat(flat) => Ok(flat),
        StorageView::Compressed(_) => Err(PersistError::Unviewable {
            reason: "entries section is delta+varint compressed; serve it through \
                     open_view / MmapIndex or load it with the copying reader",
        }),
    }
}

/// Rebuilds the view over a buffer that [`open_view`] has already fully
/// validated, skipping every check. Used by `MmapIndex` to hand out views
/// per query without re-walking the file.
///
/// # Safety
///
/// `data` must be byte-identical to a buffer `open_view` previously
/// accepted with these exact `n`/`m`/`version`/`compressed`/`paths`/
/// `sharded` parameters, with the same 8-byte-aligned base-address
/// guarantee still holding.
pub(crate) unsafe fn view_assuming_valid(
    data: &[u8],
    n: usize,
    m: usize,
    version: u32,
    compressed: bool,
    paths: bool,
    sharded: bool,
) -> IndexView<'_> {
    #[cfg(target_endian = "little")]
    {
        let layout = layout_v2(
            n as u64, m as u64, version, compressed, paths, sharded, data,
        )
        .expect("dimensions were validated at open time");
        let order = cast_u32s(&data[layout.ranking_data.clone()]);
        let offsets = cast_u64s(&data[layout.offsets.clone()]);
        let parents = layout
            .paths
            .as_ref()
            .map(|p| cast_u32s(&data[p.data.clone()]));
        let shard = layout.shard.as_ref().map(|s| {
            let mut cur = Cursor::new(data);
            cur.seek(s.data.start);
            let shard_id = cur.get_u32();
            let shard_count = cur.get_u32();
            let zeta = cur.get_u32();
            cur.take(4); // owned_count, implied by the array length
            ShardView {
                shard_id,
                shard_count,
                zeta,
                owned: cast_u32s(&data[s.data.start + 16..s.data.end]),
            }
        });
        let view = match &layout.compressed {
            None => {
                let entries = cast_entries(&data[layout.entries.clone()]);
                IndexView::flat(FlatView::from_validated_parts(order, offsets, entries))
            }
            Some(c) => {
                let skip = cast_u64s(&data[c.skip.clone()]);
                let blob = &data[c.blob_data.clone()];
                IndexView::compressed(CompressedView::from_validated_compressed_parts(
                    order, offsets, skip, blob,
                ))
            }
        };
        let view = match parents {
            Some(parents) => view.with_parents(parents),
            None => view,
        };
        match shard {
            Some(s) => view.with_shard(s),
            None => view,
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = (data, n, m, version, compressed, paths, sharded);
        unreachable!("open_view never validates a buffer on a big-endian host");
    }
}

/// An owned byte buffer whose base address is guaranteed 8-byte aligned —
/// the backing [`view_bytes`] needs when the bytes do not come from an mmap.
/// `Vec<u8>` makes no alignment promise, so serialized bytes destined for a
/// zero-copy view are staged here instead.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// An aligned buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies `data` into a fresh aligned buffer.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut buf = Self::zeroed(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        buf
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the u64 backing store holds at least `len` bytes
        // (allocated in zeroed), u8 has no alignment requirement, and the
        // lifetime is tied to &self.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// The buffer contents, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as for as_slice, with exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedBytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// Reads a whole file into an [`AlignedBytes`] buffer, the buffered
/// stand-in for an mmap when mapping is unavailable or disabled.
pub fn read_aligned<P: AsRef<Path>>(path: P) -> Result<AlignedBytes, PersistError> {
    use std::io::Read;
    let mut file = fs::File::open(path)?;
    let len = usize::try_from(file.metadata()?.len())
        .map_err(|_| PersistError::Malformed("file too large to address".into()))?;
    let mut buf = AlignedBytes::zeroed(len);
    file.read_exact(buf.as_mut_slice())?;
    Ok(buf)
}

/// Writes `index` to `path` in the current (v3) `.chl` format, overwriting
/// any existing file. The write is not atomic; writers that must never
/// expose a torn file should write to a sibling temp path and rename.
pub fn save<P: AsRef<Path>>(index: &FlatIndex, path: P) -> Result<(), PersistError> {
    save_with(index, path, &SaveOptions::default())
}

/// Writes `index` to `path` in the `.chl` format under explicit
/// [`SaveOptions`] (`compress: true` for the delta+varint entries section,
/// `version` for the legacy v2 layout).
pub fn save_with<P: AsRef<Path>>(
    index: &FlatIndex,
    path: P,
    options: &SaveOptions,
) -> Result<(), PersistError> {
    fs::write(path, to_bytes_with(index, options))?;
    Ok(())
}

/// Reads an index from a `.chl` file written by [`save`] (either version),
/// through the copying path.
pub fn load<P: AsRef<Path>>(path: P) -> Result<FlatIndex, PersistError> {
    let data = fs::read(path)?;
    from_bytes(&data)
}

/// Reads a `.chl` file's shard identity without decoding its labels:
/// `Ok(None)` for a whole-index file, the CRC-verified [`ShardSpec`] for a
/// v3 shard file. Reads (but does not decode or checksum) the label
/// payload — the shard section trails it and compressed files are only
/// self-describing with the skip table in hand — so this costs one file
/// read, not a full validation pass.
pub fn load_shard_spec<P: AsRef<Path>>(path: P) -> Result<Option<ShardSpec>, PersistError> {
    let data = fs::read(path)?;
    let header = parse_header(&data)?;
    if !header.is_sharded() {
        return Ok(None);
    }
    let layout = layout_v2(
        header.num_vertices,
        header.num_entries,
        header.version,
        header.is_compressed(),
        header.is_paths(),
        true,
        &data,
    )?;
    let Some(s) = &layout.shard else {
        return Ok(None);
    };
    // Verify the shard section's own CRC so a forged identity cannot pass,
    // without paying for the (much larger) label-section checksums.
    let computed = crc32(&data[s.section.clone()]);
    if computed != header.crc_shard {
        return Err(PersistError::SectionChecksumMismatch {
            section: Section::Shard,
            stored: header.crc_shard,
            computed,
        });
    }
    read_shard_spec(&data, s, header.num_vertices).map(Some)
}

/// Reads and validates just the header of a `.chl` file.
pub fn load_header<P: AsRef<Path>>(path: P) -> Result<FileHeader, PersistError> {
    use std::io::Read;
    let mut file = fs::File::open(path)?;
    let mut buf = [0u8; HEADER_LEN_V3];
    let mut read = 0;
    while read < HEADER_LEN_V3 {
        match file.read(&mut buf[read..])? {
            0 => break,
            k => read += k,
        }
    }
    parse_header(&buf[..read])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HubLabelIndex;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    /// Recomputes and patches a forged v3 buffer's header CRC so a test can
    /// prove a deeper guard fires after the header checks pass. No-op for
    /// pre-v3 buffers.
    fn reseal_header(buf: &mut [u8]) {
        if u32::from_le_bytes(buf[4..8].try_into().unwrap()) == VERSION {
            let crc = crc32(&buf[..HEADER_LEN_V3 - 4]);
            buf[HEADER_LEN_V3 - 4..HEADER_LEN_V3].copy_from_slice(&crc.to_le_bytes());
        }
    }

    /// Recomputes and patches every checksum of a forged v2/v3 buffer —
    /// section CRCs, and on v3 the shard and header CRCs — so corruption
    /// tests can reach the post-checksum validators.
    fn reseal(buf: &mut [u8]) {
        reseal_header(buf);
        let header = parse_header(buf).unwrap();
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.version,
            header.is_compressed(),
            header.is_paths(),
            header.is_sharded(),
            buf,
        )
        .unwrap();
        let crc_ranking = crc32(&buf[layout.ranking_section.clone()]);
        let crc_offsets = crc32(&buf[layout.offsets.clone()]);
        let crc_entries = crc32(&buf[layout.entries.clone()]);
        buf[28..32].copy_from_slice(&crc_ranking.to_le_bytes());
        buf[32..36].copy_from_slice(&crc_offsets.to_le_bytes());
        buf[36..40].copy_from_slice(&crc_entries.to_le_bytes());
        if let Some(p) = &layout.paths {
            let crc_paths = crc32(&buf[p.payload.clone()]);
            buf[p.section.start..p.section.start + 4].copy_from_slice(&crc_paths.to_le_bytes());
        }
        if header.version == VERSION {
            let crc_shard = layout
                .shard
                .as_ref()
                .map_or(0, |s| crc32(&buf[s.section.clone()]));
            buf[40..44].copy_from_slice(&crc_shard.to_le_bytes());
            // The header CRC covers the section CRCs patched above, so it
            // goes last.
            reseal_header(buf);
        }
    }

    #[test]
    fn forged_compressed_entry_count_is_rejected_not_allocated() {
        let flat = tiny_flat();
        let mut bytes = to_bytes_with(&flat, &SaveOptions::compressed());
        // Forge the header's m to a count no blob of this size could hold
        // (every encoded entry costs at least two bytes). Before the layout
        // bound this reached `Vec::with_capacity(m)` in the copying loader —
        // a capacity-overflow abort instead of a typed error.
        bytes[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        // On v3 the header CRC catches the tampering first...
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::HeaderChecksumMismatch { .. })
        ));
        // ...and once resealed, the CRC-proven header's impossible m is a
        // HeaderMalformed from the layout bound, before any allocation.
        reseal_header(&mut bytes);
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::HeaderMalformed(msg)) if msg.contains("cannot fit")
        ));
        let aligned = AlignedBytes::from_slice(&bytes);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::HeaderMalformed(_))
        ));
        // m = u64::MAX must trip the same guard, not overflow the bound
        // arithmetic.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal_header(&mut bytes);
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::HeaderMalformed(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        // Serialization is deterministic.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn path_section_round_trips_on_every_loader() {
        // Structurally valid parents for tiny_flat's five entries (each
        // vertex's run is sorted by hub rank-position, so vertex 0's
        // positive-distance entry toward hub 1 comes first): zero-distance
        // entries are their own parent, the rest step to a different
        // in-range vertex.
        let flat = tiny_flat().with_parents(vec![1, 0, 1, 1, 2]).unwrap();
        assert!(flat.has_path_data());

        // A path section is v3-only, so the writer upgrades even an explicit
        // v2 request.
        let bytes = to_bytes_with(&flat, &SaveOptions::v2());
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert!(header.is_paths());

        // Copying loader round-trips the parents exactly, and the encoding
        // stays deterministic.
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.parents(), flat.parents());
        assert_eq!(back, flat);
        assert_eq!(to_bytes_with(&back, &SaveOptions::v2()), bytes);

        // Zero-copy opens see the same parents, flat and compressed alike.
        let aligned = AlignedBytes::from_slice(&bytes);
        assert_eq!(open_view(&aligned).unwrap().parents(), flat.parents());
        let cbytes = to_bytes_with(&flat, &SaveOptions::compressed());
        let caligned = AlignedBytes::from_slice(&cbytes);
        assert_eq!(open_view(&caligned).unwrap().parents(), flat.parents());
        assert_eq!(from_bytes(&cbytes).unwrap(), flat);
    }

    #[test]
    fn path_section_corruption_is_detected() {
        let flat = tiny_flat().with_parents(vec![1, 0, 1, 1, 2]).unwrap();
        let bytes = to_bytes(&flat);
        let header = parse_header(&bytes).unwrap();
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.version,
            header.is_compressed(),
            header.is_paths(),
            header.is_sharded(),
            &bytes,
        )
        .unwrap();
        let paths = layout.paths.as_ref().expect("file carries a path section");

        // A flipped parent byte trips the section's own CRC, attributed to
        // the paths section by name.
        let mut flipped = bytes.clone();
        flipped[paths.data.start] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Paths,
                ..
            })
        ));

        // Resealed (a CRC-valid file from a hypothetical buggy writer), the
        // structural validator rejects an out-of-range parent with a typed
        // error — on the copying loader and the zero-copy open alike.
        let mut forged = bytes.clone();
        forged[paths.data.start..paths.data.start + 4].copy_from_slice(&99u32.to_le_bytes());
        reseal(&mut forged);
        assert!(matches!(
            from_bytes(&forged),
            Err(PersistError::Malformed(msg)) if msg.contains("out of range")
        ));
        let aligned = AlignedBytes::from_slice(&forged);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::Malformed(_))
        ));

        // A zero-distance entry rewired away from its owner is equally
        // structural corruption. Entry 1 is vertex 0's zero-distance entry.
        let mut rewired = bytes.clone();
        rewired[paths.data.start + 4..paths.data.start + 8].copy_from_slice(&1u32.to_le_bytes());
        reseal(&mut rewired);
        assert!(matches!(
            from_bytes(&rewired),
            Err(PersistError::Malformed(msg)) if msg.contains("own parent")
        ));

        // Non-zero bytes in the section's reserved word or tail padding are
        // refused even when the CRC is resealed around them.
        let mut dirty_reserved = bytes.clone();
        dirty_reserved[paths.section.start + 4] = 1;
        reseal(&mut dirty_reserved);
        assert!(matches!(
            from_bytes(&dirty_reserved),
            Err(PersistError::NonZeroPadding { .. })
        ));
        if paths.payload.end > paths.data.end {
            let mut dirty_pad = bytes.clone();
            dirty_pad[paths.data.end] = 1;
            reseal(&mut dirty_pad);
            assert!(matches!(
                from_bytes(&dirty_pad),
                Err(PersistError::NonZeroPadding { .. })
            ));
        }
    }

    #[test]
    fn v1_bytes_still_load_through_the_copying_path() {
        let flat = tiny_flat();
        let v1 = to_bytes_v1(&flat);
        let back = from_bytes(&v1).unwrap();
        assert_eq!(back, flat);
        assert_eq!(parse_header(&v1).unwrap().version, VERSION_V1);
        // ...but cannot back a zero-copy view.
        let aligned = AlignedBytes::from_slice(&v1);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::NotZeroCopy { version: 1 })
        ));
    }

    #[test]
    fn header_describes_the_file() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.num_vertices, 3);
        assert_eq!(header.num_entries, 5);
        assert_eq!(header.header_len(), HEADER_LEN_V3);
        assert_eq!(header.expected_file_len(), Some(bytes.len()));
        assert!(matches!(header.checksums, Checksums::PerSection { .. }));
        assert_eq!(header.crc_shard, 0);
        assert_eq!(header.crc_header, crc32(&bytes[..HEADER_LEN_V3 - 4]));
        assert!(!header.is_sharded());

        let v2 = to_bytes_with(&flat, &SaveOptions::v2());
        let header = parse_header(&v2).unwrap();
        assert_eq!(header.version, VERSION_V2);
        assert_eq!(header.header_len(), HEADER_LEN_V2);
        assert_eq!(header.expected_file_len(), Some(v2.len()));
        assert_eq!(header.crc_header, 0);

        let v1 = to_bytes_v1(&flat);
        let header = parse_header(&v1).unwrap();
        assert_eq!(header.header_len(), HEADER_LEN_V1);
        assert_eq!(header.expected_file_len(), Some(v1.len()));
        assert!(matches!(header.checksums, Checksums::WholePayload(_)));
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        // n = 3: the ranking data is 12 bytes, so the section carries 4
        // padding bytes and the offsets section still starts aligned.
        let bytes = to_bytes(&tiny_flat());
        let layout = layout_v2(3, 5, VERSION, false, false, false, &bytes).unwrap();
        for start in [
            layout.ranking_section.start,
            layout.offsets.start,
            layout.entries.start,
        ] {
            assert!(start.is_multiple_of(SECTION_ALIGN), "offset {start}");
        }
        assert_eq!(layout.ranking_section.len(), 16);
        assert_eq!(layout.ranking_data.len(), 12);
    }

    #[test]
    fn empty_and_zero_vertex_indexes_round_trip() {
        let empty = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(5)));
        assert_eq!(from_bytes(&to_bytes(&empty)).unwrap(), empty);
        let zero = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        assert_eq!(from_bytes(&to_bytes(&zero)).unwrap(), zero);
        // The degenerate shapes also view.
        let aligned = AlignedBytes::from_slice(&to_bytes(&zero));
        assert_eq!(view_bytes(&aligned).unwrap().num_vertices(), 0);
    }

    #[test]
    fn view_borrows_the_buffer_in_place() {
        let flat = tiny_flat();
        let aligned = AlignedBytes::from_slice(&to_bytes(&flat));
        let view = view_bytes(&aligned).unwrap();

        // The view's slices point INTO the serialized buffer: zero copy.
        let base = aligned.as_slice().as_ptr() as usize;
        let end = base + aligned.len();
        for ptr in [
            view.offsets().as_ptr() as usize,
            view.entries().as_ptr() as usize,
            view.order().as_ptr() as usize,
        ] {
            assert!((base..end).contains(&ptr), "slice escaped the buffer");
        }

        // And it answers exactly like the owned index.
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        assert_eq!(FlatIndex::from_view(view), flat);
    }

    #[test]
    fn misaligned_buffers_are_refused_not_recast() {
        let bytes = to_bytes(&tiny_flat());
        let mut staging = AlignedBytes::zeroed(bytes.len() + 1);
        staging.as_mut_slice()[1..].copy_from_slice(&bytes);
        let misaligned = &staging.as_slice()[1..];
        assert!(matches!(
            view_bytes(misaligned),
            Err(PersistError::Unviewable { .. })
        ));
        // The copying loader does not care about alignment.
        assert!(from_bytes(misaligned).is_ok());
    }

    #[test]
    fn corruption_is_detected_with_typed_errors() {
        let bytes = to_bytes(&tiny_flat());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            from_bytes(&bad_magic),
            Err(PersistError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_bytes(&bad_version),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));

        // Any header byte flip — here the flags word — is caught by the v3
        // header CRC before the flag is even interpreted.
        let mut bad_flags = bytes.clone();
        bad_flags[24] = 8;
        assert!(matches!(
            from_bytes(&bad_flags),
            Err(PersistError::HeaderChecksumMismatch { .. })
        ));
        // Resealed (a CRC-valid header from a hypothetical future writer),
        // the unknown bit is a typed UnsupportedFlags.
        reseal_header(&mut bad_flags);
        assert!(matches!(
            from_bytes(&bad_flags),
            Err(PersistError::UnsupportedFlags { found: 8 })
        ));

        // Forging the compressed bit onto a flat file changes the declared
        // layout out from under the payload: it must fail (the exact error
        // depends on what the reinterpreted skip table claims), never load.
        let mut forged_compressed = bytes.clone();
        forged_compressed[24] = 1;
        reseal_header(&mut forged_compressed);
        assert!(from_bytes(&forged_compressed).is_err());

        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            from_bytes(truncated),
            Err(PersistError::Truncated { .. })
        ));

        assert!(matches!(
            from_bytes(&bytes[..10]),
            Err(PersistError::Truncated { .. })
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            from_bytes(&trailing),
            Err(PersistError::TrailingBytes { extra: 1 })
        ));

        // Flip one entry byte: caught by that section's checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Entries,
                ..
            })
        ));

        // Flip a ranking padding byte (n = 3 leaves 4 pad bytes): the
        // ranking checksum covers its padding.
        let mut pad_flip = bytes.clone();
        pad_flip[HEADER_LEN_V3 + 12] ^= 0xFF;
        assert!(matches!(
            from_bytes(&pad_flip),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Ranking,
                ..
            })
        ));

        // Flip a stored section-checksum byte: the header CRC covers the
        // section CRCs, so the header reports first; resealed, the stale
        // section CRC is a section mismatch.
        let mut bad_crc = bytes.clone();
        bad_crc[29] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bad_crc),
            Err(PersistError::HeaderChecksumMismatch { .. })
        ));
        reseal_header(&mut bad_crc);
        assert!(matches!(
            from_bytes(&bad_crc),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));

        // Flip a dimension byte (n's low byte): header CRC again.
        let mut bad_n = bytes.clone();
        bad_n[8] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bad_n),
            Err(PersistError::HeaderChecksumMismatch { .. })
        ));
        let aligned = AlignedBytes::from_slice(&bad_n);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::HeaderChecksumMismatch { .. })
        ));

        // The view path reports the identical errors.
        let aligned = AlignedBytes::from_slice(&flipped);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));
    }

    #[test]
    fn forged_padding_is_rejected_even_with_valid_checksums() {
        // Non-zero ranking tail padding, checksums recomputed to match.
        let mut forged = to_bytes(&tiny_flat());
        forged[HEADER_LEN_V3 + 12] = 0xAB;
        reseal(&mut forged);
        assert!(matches!(
            from_bytes(&forged),
            Err(PersistError::NonZeroPadding { .. })
        ));

        // Non-zero reserved bytes inside an entry record.
        let mut forged = to_bytes(&tiny_flat());
        let layout = layout_v2(3, 5, VERSION, false, false, false, &forged).unwrap();
        forged[layout.entries.start + 5] = 0xCD;
        reseal(&mut forged);
        let err = from_bytes(&forged).unwrap_err();
        assert!(matches!(
            err,
            PersistError::NonZeroPadding {
                offset
            } if offset == layout.entries.start + 5
        ));
        let aligned = AlignedBytes::from_slice(&forged);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::NonZeroPadding { .. })
        ));
    }

    #[test]
    fn semantically_invalid_payloads_are_malformed() {
        // Hand-craft a v2 file whose checksums are valid but whose ranking
        // is not a permutation (vertex 0 listed twice).
        let n = 2u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // flags
        buf.extend_from_slice(&[0u8; 20]); // crc placeholders
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[0] = 0
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[1] = 0 (dup)
        for _ in 0..3 {
            buf.extend_from_slice(&0u64.to_le_bytes()); // offsets
        }
        reseal(&mut buf);
        assert!(matches!(from_bytes(&buf), Err(PersistError::Malformed(_))));
        let aligned = AlignedBytes::from_slice(&buf);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn files_round_trip_on_disk() {
        let flat = tiny_flat();
        let path = std::env::temp_dir().join(format!(
            "chl-persist-test-{}-{:?}.chl",
            std::process::id(),
            std::thread::current().id()
        ));
        save(&flat, &path).unwrap();
        let header = load_header(&path).unwrap();
        assert_eq!(header.num_vertices, 3);
        assert_eq!(header.version, VERSION);
        let back = load(&path).unwrap();
        assert_eq!(back, flat);
        let aligned = read_aligned(&path).unwrap();
        assert_eq!(view_bytes(&aligned).unwrap().query(0, 2), flat.query(0, 2));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn load_shard_spec_reads_identity_without_full_validation() {
        let path = std::env::temp_dir().join(format!(
            "chl-persist-shardspec-test-{}-{:?}.chl",
            std::process::id(),
            std::thread::current().id()
        ));
        // Whole-index files answer None.
        save(&tiny_flat(), &path).unwrap();
        assert_eq!(load_shard_spec(&path).unwrap(), None);
        // Shard files answer their spec, flat and compressed alike.
        let sharded = tiny_shardable().with_shard(tiny_shard_spec()).unwrap();
        for options in [SaveOptions::default(), SaveOptions::compressed()] {
            save_with(&sharded, &path, &options).unwrap();
            assert_eq!(load_shard_spec(&path).unwrap(), Some(tiny_shard_spec()));
        }
        // A flipped shard-section byte is caught by the section CRC even
        // though the label sections are never checksummed on this path.
        let mut bytes = to_bytes(&sharded);
        let shard_byte = bytes.len() - 1; // high byte of the last owned id
        bytes[shard_byte] ^= 1;
        reseal_header(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_shard_spec(&path),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Shard,
                ..
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aligned_bytes_guarantee_alignment() {
        for len in [0usize, 1, 7, 8, 9, 41] {
            let buf = AlignedBytes::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.is_empty(), len == 0);
            assert!((buf.as_slice().as_ptr() as usize).is_multiple_of(8));
            assert!(buf.iter().all(|&b| b == 0));
        }
        let mut buf = AlignedBytes::from_slice(&[1, 2, 3]);
        buf[1] = 9;
        assert_eq!(&buf[..], &[1, 9, 3]);
    }

    fn tiny_compressed_bytes() -> Vec<u8> {
        to_bytes_with(&tiny_flat(), &SaveOptions::compressed())
    }

    #[test]
    fn uvarints_round_trip_canonically() {
        for x in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(read_uvarint_canonical(&buf, &mut pos), Ok(x));
            assert_eq!(pos, buf.len());
        }
        // Overlong: 1 encoded in two groups.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x81, 0x00], &mut pos).is_err());
        // Truncated: continuation bit with nothing after it.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x80], &mut pos).is_err());
        // Overflow: 11 continuation groups.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x80u8; 11], &mut pos).is_err());
        // Overflow: 10th group carrying more than u64's last bit.
        let mut pos = 0;
        let mut wide = vec![0x80u8; 9];
        wide.push(0x02);
        assert!(read_uvarint_canonical(&wide, &mut pos).is_err());
    }

    #[test]
    fn compressed_bytes_round_trip_and_are_byte_stable() {
        let flat = tiny_flat();
        let bytes = tiny_compressed_bytes();
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.flags, FLAG_COMPRESSED_ENTRIES);
        assert!(header.is_compressed());
        assert_eq!(header.expected_file_len(), None);

        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        // Decode → re-encode reproduces the file byte for byte (canonical
        // varints make the encoding injective).
        assert_eq!(to_bytes_with(&back, &SaveOptions::compressed()), bytes);
        // And the flat serialization of the decoded index matches the
        // directly written flat file: the encodings are interchangeable.
        assert_eq!(to_bytes(&back), to_bytes(&flat));
    }

    #[test]
    fn compressed_views_stream_from_the_buffer_in_place() {
        let flat = tiny_flat();
        let aligned = AlignedBytes::from_slice(&tiny_compressed_bytes());
        let view = open_view(&aligned).unwrap();
        assert!(view.is_compressed());
        assert_eq!(view.num_vertices(), 3);
        assert_eq!(view.total_labels(), 5);
        assert!(view.encoding().contains("compressed"));
        // The compressed storage footprint is what the buffer holds, not
        // the 16-byte-per-entry decoded size.
        assert!(view.memory_bytes() < flat.memory_bytes());
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        assert_eq!(view.to_owned_index(), flat);

        // The strict flat view cannot back a compressed file...
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::Unviewable { .. })
        ));
        // ...while flat files also serve through open_view.
        let flat_aligned = AlignedBytes::from_slice(&to_bytes(&flat));
        let flat_view = open_view(&flat_aligned).unwrap();
        assert!(!flat_view.is_compressed());
        assert_eq!(flat_view.query(0, 2), flat.query(0, 2));
    }

    #[test]
    fn compressed_corruption_is_detected_with_typed_errors() {
        let bytes = tiny_compressed_bytes();

        // Any blob byte flip trips the entries-section checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));
        let aligned = AlignedBytes::from_slice(&flipped);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));

        // Truncation and trailing bytes are caught before checksums.
        assert!(matches!(
            from_bytes(&bytes[..bytes.len() - 8]),
            Err(PersistError::Truncated { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0; 8]);
        assert!(matches!(
            from_bytes(&trailing),
            Err(PersistError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn forged_compressed_payloads_are_rejected_after_resealing() {
        let header = parse_header(&tiny_compressed_bytes()).unwrap();
        let layout = |buf: &[u8]| {
            layout_v2(
                header.num_vertices,
                header.num_entries,
                VERSION,
                true,
                false,
                false,
                buf,
            )
        };

        // A non-monotone skip table, checksums recomputed to match.
        let mut forged = tiny_compressed_bytes();
        let skip = layout(&forged).unwrap().compressed.unwrap().skip;
        forged[skip.start + 8..skip.start + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal(&mut forged);
        let err = from_bytes(&forged).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");

        // An overlong varint (0x81 0x00 spells 1 in two groups) in the
        // first run, blob re-padded and resealed: canonicality is enforced,
        // which is what keeps re-encoding byte-stable.
        let flat = tiny_flat();
        let (skip_table, mut blob) = encode_entries(flat.offsets(), flat.entries());
        // Vertex 0's first gap varint is a single byte (hub position 0);
        // rewrite it as the same value in two groups.
        assert!(blob[0] & 0x80 == 0);
        blob.splice(0..1, [0x80 | blob[0], 0x00]);
        let mut skip2: Vec<u64> = skip_table
            .iter()
            .map(|&s| if s > 0 { s + 1 } else { 0 })
            .collect();
        // Rebuild the file by hand around the forged blob.
        let n = flat.num_vertices() as u64;
        let m = flat.total_labels() as u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf.extend_from_slice(&FLAG_COMPRESSED_ENTRIES.to_le_bytes());
        buf.extend_from_slice(&[0u8; 20]);
        for &v in flat.ranking().order() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
        for &off in flat.offsets() {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        for s in skip2.drain(..) {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&blob);
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
        reseal(&mut buf);
        let err = from_bytes(&buf).unwrap_err();
        assert!(
            err.to_string().contains("overlong"),
            "expected overlong-varint rejection, got: {err}"
        );
        let aligned = AlignedBytes::from_slice(&buf);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::Malformed(_))
        ));

        // Non-zero blob tail padding, resealed: NonZeroPadding, as for flat.
        let mut forged = tiny_compressed_bytes();
        let l = layout(&forged).unwrap();
        if l.compressed.as_ref().unwrap().blob_data.end < l.entries.end {
            let pad_at = l.compressed.unwrap().blob_data.end;
            forged[pad_at] = 0xEE;
            reseal(&mut forged);
            assert!(matches!(
                from_bytes(&forged),
                Err(PersistError::NonZeroPadding { offset }) if offset == pad_at
            ));
        }
    }

    #[test]
    fn compressed_entries_section_is_at_least_2x_smaller_on_a_grid() {
        use chl_graph::generators::{grid_network, GridOptions};
        let g = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                ..GridOptions::default()
            },
            7,
        );
        let ranking = chl_ranking::degree_ranking(&g);
        let flat = FlatIndex::from_index(&crate::pll::sequential_pll(&g, &ranking).index);

        let flat_bytes = to_bytes(&flat);
        let comp_bytes = to_bytes_with(&flat, &SaveOptions::compressed());
        let file_ratio = flat_bytes.len() as f64 / comp_bytes.len() as f64;

        let header = parse_header(&comp_bytes).unwrap();
        let encoded = header.entries_section_len(comp_bytes.len() as u64);
        let decoded = header.decoded_entries_len();
        assert_eq!(decoded, flat.total_labels() as u64 * 16);
        assert!(
            encoded * 2 <= decoded,
            "entries section must shrink >= 2x: {encoded} encoded vs {decoded} decoded \
             (whole file {file_ratio:.2}x)"
        );

        // And the flat header reports the flat section size.
        let flat_header = parse_header(&flat_bytes).unwrap();
        assert_eq!(
            flat_header.entries_section_len(flat_bytes.len() as u64),
            decoded
        );
    }

    #[test]
    fn empty_and_zero_vertex_indexes_round_trip_compressed() {
        let empty = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(5)));
        let bytes = to_bytes_with(&empty, &SaveOptions::compressed());
        assert_eq!(from_bytes(&bytes).unwrap(), empty);
        let aligned = AlignedBytes::from_slice(&bytes);
        let view = open_view(&aligned).unwrap();
        assert_eq!(view.query(0, 3), chl_graph::types::INFINITY);
        assert_eq!(view.query(2, 2), 0);

        let zero = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        let bytes = to_bytes_with(&zero, &SaveOptions::compressed());
        assert_eq!(from_bytes(&bytes).unwrap(), zero);
        let aligned = AlignedBytes::from_slice(&bytes);
        assert_eq!(open_view(&aligned).unwrap().num_vertices(), 0);
    }

    #[test]
    fn display_messages_are_informative() {
        let e = PersistError::BadMagic { found: *b"NOPE" };
        assert!(e.to_string().contains("magic"));
        let e = PersistError::UnsupportedVersion { found: 7 };
        assert!(e.to_string().contains('7'));
        let e = PersistError::UnsupportedFlags { found: 3 };
        assert!(e.to_string().contains("flags"));
        let e = PersistError::Truncated {
            expected: 100,
            found: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = PersistError::SectionChecksumMismatch {
            section: Section::Offsets,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("offsets") && e.to_string().contains("checksum"));
        let e = PersistError::NonZeroPadding { offset: 44 };
        assert!(e.to_string().contains("44"));
        let e = PersistError::Unviewable { reason: "why" };
        assert!(e.to_string().contains("why"));
        let e = PersistError::NotZeroCopy { version: 1 };
        assert!(e.to_string().contains("v1"));
        let e = PersistError::TrailingBytes { extra: 3 };
        assert!(e.to_string().contains("trailing"));
        let e = PersistError::Malformed("oops".into());
        assert!(e.to_string().contains("oops"));
        let e = PersistError::HeaderChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("header") && e.to_string().contains("checksum"));
        let e = PersistError::HeaderMalformed("bad shard word".into());
        assert!(e.to_string().contains("bad shard word"));
    }

    // ---- v3 shard section -------------------------------------------------

    /// A 3-vertex index where vertex 1 carries no labels: the shape of shard
    /// 0-of-2 owning positions {0, 2} (foreign vertices have empty runs).
    fn tiny_shardable() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    fn tiny_shard_spec() -> ShardSpec {
        ShardSpec {
            shard_id: 0,
            shard_count: 2,
            zeta: 2,
            owned: vec![0, 2],
        }
    }

    #[test]
    fn sharded_files_round_trip_with_typed_foreign_answers() {
        let flat = tiny_shardable()
            .with_shard(tiny_shard_spec())
            .expect("spec is consistent with the labels");
        let bytes = to_bytes(&flat);

        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert!(header.is_sharded());
        assert_ne!(header.flags & FLAG_SHARDED, 0);
        assert_ne!(header.crc_shard, 0);
        assert_eq!(header.expected_file_len(), None);

        // Copying loader preserves the shard identity.
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        let spec = back.shard().expect("shard section round-trips");
        assert_eq!(spec, &tiny_shard_spec());

        // Borrowed view: shard-honest queries.
        let aligned = AlignedBytes::from_slice(&bytes);
        let view = open_view(&aligned).unwrap();
        let shard = view.shard().expect("view exposes the shard");
        assert_eq!((shard.shard_id, shard.shard_count, shard.zeta), (0, 2, 2));
        assert!(shard.owns(0) && !shard.owns(1) && shard.owns(2));
        assert_eq!(view.try_query(0, 2), Ok(2));
        assert_eq!(view.try_query(0, 0), Ok(0));
        assert_eq!(
            view.try_query(0, 1),
            Err(crate::flat::NotThisShard { vertex: 1 })
        );
        assert_eq!(
            view.try_query(1, 2),
            Err(crate::flat::NotThisShard { vertex: 1 })
        );
        // Out-of-range endpoints stay data, exactly as unsharded.
        assert_eq!(view.try_query(99, 0), Ok(chl_graph::types::INFINITY));
        // The untyped path still answers (callers who opt out of typing).
        assert_eq!(view.query(0, 2), 2);

        // to_owned_index keeps the shard attached.
        let owned = view.to_owned_index();
        assert_eq!(owned.shard(), Some(&tiny_shard_spec()));
        assert_eq!(
            owned.try_query(0, 1),
            Err(crate::flat::NotThisShard { vertex: 1 })
        );

        // view_bytes refuses shard files: FlatView has no shard channel, so
        // foreign vertices would silently read as unreachable.
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::Unviewable { .. })
        ));

        // A sharded index cannot be written as v2 — the writer upgrades.
        let forced_v2 = to_bytes_with(&flat, &SaveOptions::v2());
        assert_eq!(parse_header(&forced_v2).unwrap().version, VERSION);

        // Compressed + sharded composes.
        let comp = to_bytes_with(&flat, &SaveOptions::compressed());
        let h = parse_header(&comp).unwrap();
        assert!(h.is_compressed() && h.is_sharded());
        assert_eq!(from_bytes(&comp).unwrap(), flat);
        let aligned = AlignedBytes::from_slice(&comp);
        let view = open_view(&aligned).unwrap();
        assert_eq!(
            view.try_query(0, 1),
            Err(crate::flat::NotThisShard { vertex: 1 })
        );
        assert_eq!(view.try_query(0, 2), Ok(2));
    }

    #[test]
    fn with_shard_rejects_inconsistent_specs() {
        // Vertex 1 carries labels in tiny_flat, so a spec that disowns it is
        // inconsistent with the payload.
        let err = tiny_flat().with_shard(tiny_shard_spec()).unwrap_err();
        assert!(
            err.to_string().contains("not in the owned set"),
            "unexpected: {err}"
        );

        // Owned ids must be strictly increasing and in range.
        let mut dup = tiny_shard_spec();
        dup.owned = vec![0, 0];
        assert!(tiny_shardable().with_shard(dup).is_err());
        let mut oob = tiny_shard_spec();
        oob.owned = vec![0, 9];
        assert!(tiny_shardable().with_shard(oob).is_err());
        let mut bad_id = tiny_shard_spec();
        bad_id.shard_id = 5;
        assert!(tiny_shardable().with_shard(bad_id).is_err());
    }

    #[test]
    fn shard_section_forgeries_are_rejected() {
        let flat = tiny_shardable().with_shard(tiny_shard_spec()).unwrap();
        let bytes = to_bytes(&flat);
        let header = parse_header(&bytes).unwrap();
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.version,
            header.is_compressed(),
            header.is_paths(),
            true,
            &bytes,
        )
        .unwrap();
        let shard = layout.shard.as_ref().expect("file is sharded");

        // Flip a shard-section byte, reseal only the header: the shard CRC
        // catches it with a typed section error.
        let mut forged = bytes.clone();
        forged[shard.data.start] ^= 0xFF;
        reseal_header(&mut forged);
        assert!(matches!(
            from_bytes(&forged),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Shard,
                ..
            })
        ));

        // Non-increasing owned ids, fully resealed: Malformed.
        let mut forged = bytes.clone();
        let owned_at = shard.data.start + 16;
        forged[owned_at..owned_at + 4].copy_from_slice(&2u32.to_le_bytes());
        forged[owned_at + 4..owned_at + 8].copy_from_slice(&2u32.to_le_bytes());
        reseal(&mut forged);
        assert!(matches!(
            from_bytes(&forged),
            Err(PersistError::Malformed(_))
        ));

        // Disown a labeled vertex (claim {1, 2} instead of {0, 2}), fully
        // resealed: the cross-section consistency check fires.
        let mut forged = bytes.clone();
        forged[owned_at..owned_at + 4].copy_from_slice(&1u32.to_le_bytes());
        reseal(&mut forged);
        let err = from_bytes(&forged).unwrap_err();
        assert!(
            err.to_string().contains("not in the owned set"),
            "unexpected: {err}"
        );
        let aligned = AlignedBytes::from_slice(&forged);
        assert!(open_view(&aligned).is_err());

        // Shard tail padding is covered by the shard CRC.
        if shard.data.end < shard.section.end {
            let mut forged = bytes.clone();
            forged[shard.data.end] = 0xAA;
            reseal(&mut forged);
            assert!(matches!(
                from_bytes(&forged),
                Err(PersistError::NonZeroPadding { offset }) if offset == shard.data.end
            ));
        }

        // A nonzero crc_shard on an unsharded header is HeaderMalformed.
        let mut unsharded = to_bytes(&tiny_flat());
        unsharded[40..44].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        reseal_header(&mut unsharded);
        assert!(matches!(
            from_bytes(&unsharded),
            Err(PersistError::HeaderMalformed(_))
        ));
    }

    #[test]
    fn v2_header_corruption_reports_the_caveat() {
        // Write a genuine v2 file (no header CRC), corrupt a header byte:
        // the error is still typed, and its message points at the v2 gap.
        let bytes = to_bytes_with(&tiny_flat(), &SaveOptions::v2());
        assert_eq!(parse_header(&bytes).unwrap().version, VERSION_V2);
        let mut bad = bytes.clone();
        bad[8] ^= 0x01; // n's low byte
        let err = from_bytes(&bad).unwrap_err();
        assert!(
            err.to_string().contains("v2 headers carry no checksum"),
            "unexpected: {err}"
        );
        // Uncorrupted v2 still loads cleanly.
        assert_eq!(from_bytes(&bytes).unwrap(), tiny_flat());
    }
}
