//! The versioned `.chl` on-disk index format.
//!
//! A `.chl` file is a byte-exact dump of a [`FlatIndex`]: the ranking that
//! gives hub positions their meaning, the CSR offsets array and the
//! contiguous label entries. Since version 2 the on-disk layout **is** the
//! query-time layout: every section starts on an 8-byte boundary and stores
//! its integers exactly as the in-memory arrays do, so a validated buffer can
//! be served through a borrowed [`FlatView`] without copying a single label
//! ([`view_bytes`]). Version 1 files (the original packed layout) keep
//! loading through the copying path ([`from_bytes`] / [`load`]).
//!
//! ## Version 2 layout (current)
//!
//! All integers little-endian; every section 8-byte aligned and zero-padded
//! to a multiple of 8 bytes:
//!
//! ```text
//! offset  size        field
//! 0       4           magic        "CHLI"
//! 4       4           version      u32, 2
//! 8       8           n            u64, number of vertices
//! 16      8           m            u64, total number of label entries
//! 24      4           flags        u32, bit 0 = compressed entries, rest 0
//! 28      4           crc_ranking  u32, CRC-32 of the ranking section (incl. padding)
//! 32      4           crc_offsets  u32, CRC-32 of the offsets section
//! 36      4           crc_entries  u32, CRC-32 of the entries section
//! 40      n * 4 (+pad) ranking     vertex ids, most important first, zero-padded to 8
//! ..      (n+1) * 8   offsets      entries[offsets[v]..offsets[v+1]] labels vertex v
//! ..      m * 16      entries      (u32 hub rank position, u32 zero, u64 distance)
//! ```
//!
//! The 16-byte entry record mirrors `#[repr(C)] LabelEntry` exactly (hub at
//! offset 0, distance at offset 8, four padding bytes that must be zero), so
//! `&[u8] -> &[LabelEntry]` is a pointer cast on little-endian hosts.
//!
//! ## Compressed entries section (v2, flags bit 0)
//!
//! With [`FLAG_COMPRESSED_ENTRIES`] set in the flags word, the header,
//! ranking and offsets sections are unchanged but the entries section stores
//! delta+varint encoded label runs instead of 16-byte records:
//!
//! ```text
//! ..      (n+1) * 8        skip   u64 byte offsets: vertex v's encoded run is
//!                                 blob[skip[v]..skip[v+1]]; skip[n] = blob length
//! ..      skip[n] (+pad)   blob   per vertex, per entry: LEB128 gap, LEB128 dist
//! ```
//!
//! Within a run the first entry stores its hub rank position directly and
//! every later entry stores the gap to the previous hub (>= 1, since runs
//! are strictly hub-sorted); distances are plain LEB128 u64s. Both use
//! canonical (minimal-length) little-endian base-128 varints — overlong
//! encodings are rejected, which is what makes re-encoding byte-stable.
//! Because labels are hub-sorted, gaps are small and one entry typically
//! costs 2–4 bytes instead of 16 (the paper names the aggregate label store
//! as the memory bottleneck at scale).
//!
//! The skip table is what keeps decode O(label set): a query seeks straight
//! to the two runs it intersects and streams them through the
//! [`CompressedView`] kernel. `crc_entries`
//! covers the whole section (skip table, blob and tail padding), and the
//! expected file length is self-describing via `skip[n]` — validated with
//! the same exactness as the flat layout. Compressed files load everywhere
//! flat files do: the copying loader decodes into a [`FlatIndex`], while
//! [`open_view`] / `MmapIndex` serve them in place by streaming.
//!
//! ## Version 1 layout (legacy, read-only)
//!
//! ```text
//! offset  size        field
//! 0       4           magic    "CHLI"
//! 4       4           version  u32, 1
//! 8       8           n        u64
//! 16      8           m        u64
//! 24      4           crc32    u32, CRC-32 of every byte after the header
//! 28      n * 4       ranking
//! ..      (n+1) * 8   offsets
//! ..      m * 12      entries  (u32 hub, u64 distance) packed pairs
//! ```
//!
//! ## Versioning and compatibility policy
//!
//! `version` is bumped on **any** layout change; readers reject versions they
//! do not know ([`PersistError::UnsupportedVersion`]) rather than guessing.
//! v1 files load (copying) but cannot back a zero-copy view
//! ([`PersistError::NotZeroCopy`]); there is no in-place migration — an
//! index is cheap to rebuild from its graph, so old files are regenerated,
//! not converted. Writers emit v2 only ([`to_bytes`] / [`save`]);
//! [`to_bytes_v1`] remains for compatibility tests and old tooling.
//!
//! ## Corruption detection
//!
//! Loading validates, in order: the magic, the version, the flags word, that
//! the file length matches the header's dimensions exactly (truncation and
//! trailing garbage are both rejected), the checksums — one CRC-32 per
//! section in v2, so integrity can be checked (and was computed by the
//! writer) incrementally, section by section, instead of in one pass over a
//! multi-GB payload — that all padding bytes are zero, and finally the
//! semantic invariants: the ranking is a permutation, the offsets start at
//! zero and rise monotonically to `m`, and every vertex's entries are
//! strictly hub-sorted with in-range hub positions. Every failure is a typed
//! [`PersistError`]; no input, however mangled, panics the loader.

use std::fmt;
use std::fs;
use std::ops::Range;
use std::path::Path;

use chl_graph::types::VertexId;
use chl_ranking::Ranking;

use crate::flat::{CompressedView, FlatIndex, FlatView, IndexView};
use crate::labels::LabelEntry;

/// File magic: "Canonical Hub Label Index".
pub const MAGIC: &[u8; 4] = b"CHLI";
/// Current format version. Bumped on any layout change.
pub const VERSION: u32 = 2;
/// The legacy packed format version, still readable via the copying path.
pub const VERSION_V1: u32 = 1;
/// Size of the v1 fixed header in bytes (`magic | version | n | m | crc32`).
pub const HEADER_LEN_V1: usize = 28;
/// Size of the v2 fixed header in bytes
/// (`magic | version | n | m | flags | crc_ranking | crc_offsets | crc_entries`).
pub const HEADER_LEN_V2: usize = 40;
/// Size of one serialized v1 label entry in bytes (`u32 hub | u64 dist`).
pub const ENTRY_LEN_V1: usize = 12;
/// Size of one serialized v2 label entry in bytes
/// (`u32 hub | u32 zero | u64 dist`), identical to `size_of::<LabelEntry>()`.
pub const ENTRY_LEN_V2: usize = 16;
/// Alignment every v2 section start and length is padded to.
pub const SECTION_ALIGN: usize = 8;
/// v2 flags bit 0: the entries section is delta+varint compressed (per-set
/// skip table + LEB128 hub gaps and distances) instead of 16-byte records.
pub const FLAG_COMPRESSED_ENTRIES: u32 = 1 << 0;
/// Every flag bit this reader understands; any other bit set is
/// [`PersistError::UnsupportedFlags`].
pub const FLAGS_KNOWN: u32 = FLAG_COMPRESSED_ENTRIES;

/// Writer knobs for [`to_bytes_with`] / [`save_with`]. The default writes
/// the flat v2 layout; `compress` switches the entries section to the
/// delta+varint encoding behind [`FLAG_COMPRESSED_ENTRIES`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveOptions {
    /// Delta-encode hub positions and varint-encode distances in the
    /// entries section. Several-fold smaller files; queries through the
    /// zero-copy paths stream-decode the two runs they touch instead of
    /// reinterpreting them in place.
    pub compress: bool,
}

impl SaveOptions {
    /// Options selecting the compressed entries encoding.
    pub fn compressed() -> Self {
        SaveOptions { compress: true }
    }
}

/// The three payload sections of a `.chl` file, in file order. v2 stores one
/// checksum per section so corruption reports name the section hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The ranking order array (`order[pos] = vertex`).
    Ranking,
    /// The CSR offsets array.
    Offsets,
    /// The concatenated label entries.
    Entries,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Ranking => "ranking",
            Section::Offsets => "offsets",
            Section::Entries => "entries",
        })
    }
}

/// Errors produced while reading or writing `.chl` index files.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `CHLI` magic — not an index file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file was written by a format version this reader does not know.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
    },
    /// The v2 flags word carries bits this reader does not understand.
    UnsupportedFlags {
        /// Flags word stamped in the file.
        found: u32,
    },
    /// The file is shorter than its header claims — an interrupted write or
    /// a truncated copy.
    Truncated {
        /// Bytes the header (or the fixed header size) requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file is longer than its header claims; the surplus would be
    /// silently ignored data, so it is rejected.
    TrailingBytes {
        /// Surplus bytes after the declared payload.
        extra: usize,
    },
    /// The v1 whole-payload checksum does not match — the bytes were
    /// corrupted after the header was written (bit rot, torn write, manual
    /// edit).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// A v2 per-section checksum does not match; the named section was
    /// corrupted after the header was written.
    SectionChecksumMismatch {
        /// The section whose bytes disagree with the header.
        section: Section,
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the section actually read.
        computed: u32,
    },
    /// A v2 padding byte (section tail padding or the four reserved bytes
    /// inside an entry record) is not zero — a forged or hand-edited file,
    /// since every padding flip in a written file already fails its section
    /// checksum.
    NonZeroPadding {
        /// Absolute file offset of the offending byte.
        offset: usize,
    },
    /// The bytes are a valid-looking v2 file but cannot back a zero-copy
    /// view in this process: the buffer's base address is not 8-byte
    /// aligned, or the host is big-endian (v2 sections are reinterpreted in
    /// place as little-endian words). Load through [`from_bytes`] instead,
    /// or hand [`view_bytes`] an [`AlignedBytes`] / mmap-backed buffer.
    Unviewable {
        /// What the buffer or host lacks.
        reason: &'static str,
    },
    /// The file's format version predates the aligned v2 layout: it can only
    /// be loaded through the copying path ([`from_bytes`] / [`load`]).
    NotZeroCopy {
        /// Version stamped in the file.
        version: u32,
    },
    /// The bytes checksum correctly but violate a semantic invariant
    /// (non-permutation ranking, non-monotonic offsets, unsorted or
    /// out-of-range hubs) — a writer bug or a forged file.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a .chl index file: expected magic {MAGIC:?}, found {found:?}"
            ),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported .chl format version {found} (this reader understands up to {VERSION})"
            ),
            PersistError::UnsupportedFlags { found } => write!(
                f,
                "unsupported .chl flags {found:#010x} (this reader understands no flags)"
            ),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated .chl file: expected {expected} bytes, found {found}"
            ),
            PersistError::TrailingBytes { extra } => {
                write!(
                    f,
                    ".chl file has {extra} trailing bytes beyond its declared payload"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt .chl payload: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "corrupt .chl {section} section: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::NonZeroPadding { offset } => write!(
                f,
                "malformed .chl file: padding byte at offset {offset} is not zero"
            ),
            PersistError::Unviewable { reason } => write!(
                f,
                "buffer cannot back a zero-copy .chl view ({reason}); load it with the copying reader instead"
            ),
            PersistError::NotZeroCopy { version } => write!(
                f,
                ".chl format v{version} predates the aligned zero-copy layout (v{VERSION}): \
                 load it with the copying reader or rebuild the index"
            ),
            PersistError::Malformed(msg) => write!(f, "malformed .chl index: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The checksums a `.chl` header stores: one CRC over the whole payload in
/// v1, one CRC per section in v2 (the incremental mode — each section can be
/// produced and verified independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checksums {
    /// v1: a single CRC-32 over every byte after the header.
    WholePayload(u32),
    /// v2: one CRC-32 per section, each covering the section's data bytes
    /// and its tail padding.
    PerSection {
        /// CRC-32 of the ranking section.
        ranking: u32,
        /// CRC-32 of the offsets section.
        offsets: u32,
        /// CRC-32 of the entries section.
        entries: u32,
    },
}

/// The fixed-size header of a `.chl` file, readable without loading the
/// payload (used by `chl inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Format version stamped in the file.
    pub version: u32,
    /// Number of vertices the index covers.
    pub num_vertices: u64,
    /// Total number of label entries (decoded count, whatever the
    /// encoding).
    pub num_entries: u64,
    /// The v2 flags word (`0` for v1 files); see [`FLAG_COMPRESSED_ENTRIES`].
    pub flags: u32,
    /// The stored payload checksum(s).
    pub checksums: Checksums,
}

impl FileHeader {
    /// Size of this header on disk, in bytes (version-dependent).
    pub fn header_len(&self) -> usize {
        match self.version {
            VERSION_V1 => HEADER_LEN_V1,
            _ => HEADER_LEN_V2,
        }
    }

    /// `true` when the entries section is delta+varint compressed.
    pub fn is_compressed(&self) -> bool {
        self.flags & FLAG_COMPRESSED_ENTRIES != 0
    }

    /// Total file size in bytes implied by the header's dimensions, or
    /// `None` when it cannot be known from the header alone — compressed
    /// files are self-describing (the encoded length lives in the skip
    /// table), and hostile dimensions can overflow.
    pub fn expected_file_len(&self) -> Option<usize> {
        if self.is_compressed() {
            return None;
        }
        let payload = match self.version {
            VERSION_V1 => expected_payload_len_v1(self.num_vertices, self.num_entries)?,
            _ => expected_payload_len_v2(self.num_vertices, self.num_entries)?,
        };
        payload.checked_add(self.header_len())
    }

    /// On-disk size of the entries section in bytes, derived from the header
    /// and the actual file length: the storage queries really touch. For
    /// flat encodings this is `m` times the record size; for compressed
    /// files it is everything after the offsets section (skip table, blob
    /// and padding). Saturating — hostile headers must not wrap.
    pub fn entries_section_len(&self, file_len: u64) -> u64 {
        let n = self.num_vertices;
        let m = self.num_entries;
        match self.version {
            VERSION_V1 => m.saturating_mul(ENTRY_LEN_V1 as u64),
            _ if self.is_compressed() => {
                let before_entries = (HEADER_LEN_V2 as u64)
                    .saturating_add(pad_to_align(n.saturating_mul(4)).unwrap_or(u64::MAX))
                    .saturating_add(n.saturating_add(1).saturating_mul(8));
                file_len.saturating_sub(before_entries)
            }
            _ => m.saturating_mul(ENTRY_LEN_V2 as u64),
        }
    }

    /// In-memory size of the decoded entries in bytes (`m * 16`), the
    /// denominator of the compression ratio.
    pub fn decoded_entries_len(&self) -> u64 {
        self.num_entries.saturating_mul(ENTRY_LEN_V2 as u64)
    }
}

// --- CRC-32 (IEEE 802.3), table-driven; small enough to vendor rather than
// --- pull a dependency the offline build cannot fetch.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, the checksum the `.chl` header stores.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Rounds `len` up to the next multiple of [`SECTION_ALIGN`], `None` on
/// overflow.
fn pad_to_align(len: u64) -> Option<u64> {
    len.checked_next_multiple_of(SECTION_ALIGN as u64)
}

// --- LEB128 varints (the compressed entries encoding) --------------------

/// Appends `x` to `buf` as a canonical (minimal-length) little-endian
/// base-128 varint: 7 value bits per byte, high bit = continuation.
pub(crate) fn write_uvarint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Fast LEB128 reader for *validated* streams: advances `pos` and returns
/// the value, or `None` past the end. Canonicality was enforced at load
/// time, so this reader does not re-check it.
#[inline]
pub(crate) fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Strict LEB128 reader for the validation pass: rejects truncation,
/// encodings longer than a u64 can hold, and overlong (non-minimal)
/// encodings. Canonicality is what makes decode → re-encode byte-stable.
fn read_uvarint_canonical(bytes: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err("truncated varint");
        };
        *pos += 1;
        if shift > 63 || (shift == 63 && (byte & 0x7F) > 1) {
            return Err("varint overflows u64");
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err("overlong varint encoding");
            }
            return Ok(x);
        }
        shift += 7;
    }
}

/// v1 payload size implied by the header dimensions, `None` on overflow
/// (which can only arise from a corrupt or hostile header).
fn expected_payload_len_v1(n: u64, m: u64) -> Option<usize> {
    let ranking = n.checked_mul(4)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let entries = m.checked_mul(ENTRY_LEN_V1 as u64)?;
    let total = ranking.checked_add(offsets)?.checked_add(entries)?;
    usize::try_from(total).ok()
}

/// v2 payload size (all sections padded) implied by the header dimensions.
fn expected_payload_len_v2(n: u64, m: u64) -> Option<usize> {
    let ranking = pad_to_align(n.checked_mul(4)?)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let entries = m.checked_mul(ENTRY_LEN_V2 as u64)?;
    let total = ranking.checked_add(offsets)?.checked_add(entries)?;
    usize::try_from(total).ok()
}

/// Byte ranges of the compressed entries section's two halves.
#[derive(Debug, Clone)]
struct CompressedLayout {
    /// The per-vertex skip table: `(n + 1)` u64 byte offsets into the blob.
    skip: Range<usize>,
    /// The encoded blob's data bytes, excluding tail padding.
    blob_data: Range<usize>,
}

/// Absolute byte ranges of the three v2 sections within a file of validated
/// length. Section starts and lengths are all multiples of
/// [`SECTION_ALIGN`], so a section start in an 8-byte-aligned buffer is
/// itself 8-byte aligned.
#[derive(Debug, Clone)]
struct LayoutV2 {
    n: usize,
    m: usize,
    /// Ranking data bytes (`n * 4`), excluding tail padding.
    ranking_data: Range<usize>,
    /// Full ranking section including tail padding.
    ranking_section: Range<usize>,
    offsets: Range<usize>,
    /// The whole entries section — `m * 16` records when flat, skip table +
    /// blob + padding when compressed. `crc_entries` covers exactly this.
    entries: Range<usize>,
    /// Sub-layout of the entries section when [`FLAG_COMPRESSED_ENTRIES`]
    /// is set.
    compressed: Option<CompressedLayout>,
}

/// Computes the v2 section layout from header dimensions and checks the
/// buffer length matches exactly. Compressed files are self-describing —
/// the encoded blob length is read from the last skip-table slot, which is
/// why this takes the whole buffer rather than just its length.
fn layout_v2(n64: u64, m64: u64, compressed: bool, data: &[u8]) -> Result<LayoutV2, PersistError> {
    if n64 > VertexId::MAX as u64 {
        return Err(PersistError::Malformed(format!(
            "{n64} vertices exceeds the u32 vertex id space"
        )));
    }
    let overflow = || {
        PersistError::Malformed(format!(
            "declared dimensions (n = {n64}, m = {m64}) overflow the addressable size"
        ))
    };
    let data_len = data.len();
    let ranking_len =
        pad_to_align(n64.checked_mul(4).ok_or_else(overflow)?).ok_or_else(overflow)?;
    let offsets_len = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(overflow)?;
    let prefix = (HEADER_LEN_V2 as u64)
        .checked_add(ranking_len)
        .and_then(|x| x.checked_add(offsets_len))
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(overflow)?;

    let (expected, compressed_layout) = if compressed {
        // Fixed prefix first: header, ranking, offsets, skip table. Only
        // once those fit can the blob length be read out of the skip table.
        let skip_len = offsets_len as usize;
        let fixed = prefix.checked_add(skip_len).ok_or_else(overflow)?;
        if data_len < fixed {
            return Err(PersistError::Truncated {
                expected: fixed,
                found: data_len,
            });
        }
        let blob_len = u64::from_le_bytes(data[fixed - 8..fixed].try_into().expect("8 bytes"));
        let blob_padded = pad_to_align(blob_len)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| {
                PersistError::Malformed(format!(
                    "declared encoded blob length {blob_len} overflows the addressable size"
                ))
            })?;
        let expected = fixed.checked_add(blob_padded).ok_or_else(overflow)?;
        // The flat arm bounds m against the file length via `m * 16`; the
        // compressed equivalent is that every encoded entry costs at least
        // two bytes (a one-byte hub-gap varint plus a one-byte distance
        // varint). A forged header whose m cannot fit in the blob must be
        // rejected here, before any loader allocates m-sized buffers.
        if m64.checked_mul(2).is_none_or(|min| min > blob_len) {
            return Err(PersistError::Malformed(format!(
                "declared entry count {m64} cannot fit in a {blob_len}-byte encoded blob"
            )));
        }
        let layout = CompressedLayout {
            skip: prefix..fixed,
            blob_data: fixed..fixed + blob_len as usize,
        };
        (expected, Some(layout))
    } else {
        let entries_len = m64
            .checked_mul(ENTRY_LEN_V2 as u64)
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(overflow)?;
        (prefix.checked_add(entries_len).ok_or_else(overflow)?, None)
    };
    if data_len < expected {
        return Err(PersistError::Truncated {
            expected,
            found: data_len,
        });
    }
    if data_len > expected {
        return Err(PersistError::TrailingBytes {
            extra: data_len - expected,
        });
    }
    let n = n64 as usize;
    let m = m64 as usize;
    let ranking_start = HEADER_LEN_V2;
    let ranking_data_end = ranking_start + n * 4;
    let ranking_end = ranking_start + ranking_len as usize;
    let offsets_end = ranking_end + (n + 1) * 8;
    debug_assert_eq!(offsets_end, prefix);
    Ok(LayoutV2 {
        n,
        m,
        ranking_data: ranking_start..ranking_data_end,
        ranking_section: ranking_start..ranking_end,
        offsets: ranking_end..offsets_end,
        entries: offsets_end..expected,
        compressed: compressed_layout,
    })
}

/// Verifies the three per-section checksums and that every padding byte —
/// section tail padding and the reserved word inside each entry record — is
/// zero. This is the whole-payload integrity check of v2, done one section
/// at a time.
fn check_sections_v2(
    data: &[u8],
    header: &FileHeader,
    layout: &LayoutV2,
) -> Result<(), PersistError> {
    let Checksums::PerSection {
        ranking,
        offsets,
        entries,
    } = header.checksums
    else {
        unreachable!("v2 headers always parse per-section checksums");
    };
    for (section, range, stored) in [
        (Section::Ranking, &layout.ranking_section, ranking),
        (Section::Offsets, &layout.offsets, offsets),
        (Section::Entries, &layout.entries, entries),
    ] {
        let computed = crc32(&data[range.clone()]);
        if computed != stored {
            return Err(PersistError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            });
        }
    }
    if let Some(i) = data[layout.ranking_data.end..layout.ranking_section.end]
        .iter()
        .position(|&b| b != 0)
    {
        return Err(PersistError::NonZeroPadding {
            offset: layout.ranking_data.end + i,
        });
    }
    match &layout.compressed {
        None => {
            // Bytes 4..8 of every 16-byte entry record mirror LabelEntry's
            // struct padding and must be zero, so serialization stays
            // deterministic and a forged record cannot smuggle data the
            // view cannot see.
            let entry_bytes = &data[layout.entries.clone()];
            for (rec, chunk) in entry_bytes.chunks_exact(ENTRY_LEN_V2).enumerate() {
                if let Some(i) = chunk[4..8].iter().position(|&b| b != 0) {
                    return Err(PersistError::NonZeroPadding {
                        offset: layout.entries.start + rec * ENTRY_LEN_V2 + 4 + i,
                    });
                }
            }
        }
        Some(c) => {
            // The encoded blob's tail padding must be zero (the skip table
            // is 8-byte sized by construction and carries no padding).
            if let Some(i) = data[c.blob_data.end..layout.entries.end]
                .iter()
                .position(|&b| b != 0)
            {
                return Err(PersistError::NonZeroPadding {
                    offset: c.blob_data.end + i,
                });
            }
        }
    }
    Ok(())
}

/// Checks that `order` lists every vertex in `0..order.len()` exactly once.
fn check_permutation(order: &[VertexId]) -> Result<(), PersistError> {
    let n = order.len();
    let mut seen = vec![false; n];
    for &v in order {
        let vi = v as usize;
        if vi >= n {
            return Err(PersistError::Malformed(format!(
                "ranking section: vertex {v} out of range"
            )));
        }
        if seen[vi] {
            return Err(PersistError::Malformed(format!(
                "ranking section: vertex {v} appears twice in the ranking"
            )));
        }
        seen[vi] = true;
    }
    Ok(())
}

/// The offsets-array invariants shared by every load path and encoding:
/// start at 0, rise monotonically, end at `m`.
fn validate_offsets(n: usize, offsets: &[u64], m64: u64) -> Result<(), PersistError> {
    debug_assert_eq!(offsets.len(), n + 1);
    if offsets[0] != 0 {
        return Err(PersistError::Malformed(format!(
            "offsets must start at 0, found {}",
            offsets[0]
        )));
    }
    if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
        return Err(PersistError::Malformed(format!(
            "offsets must be monotonically non-decreasing, found {} before {}",
            w[0], w[1]
        )));
    }
    if offsets[n] != m64 {
        return Err(PersistError::Malformed(format!(
            "final offset {} disagrees with the declared entry count {m64}",
            offsets[n]
        )));
    }
    Ok(())
}

/// The per-entry invariants of the flat encoding: every vertex's entries
/// strictly hub-sorted with in-range hub positions. (The compressed decoder
/// enforces the same invariants inline while it decodes.)
fn validate_hub_sort(
    n: usize,
    offsets: &[u64],
    entries: &[LabelEntry],
) -> Result<(), PersistError> {
    for v in 0..n {
        let slice = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for e in slice {
            if e.hub as usize >= n {
                return Err(PersistError::Malformed(format!(
                    "vertex {v} has a label with hub position {} outside 0..{n}",
                    e.hub
                )));
            }
            if prev.is_some_and(|p| p >= e.hub) {
                return Err(PersistError::Malformed(format!(
                    "labels of vertex {v} are not strictly hub-sorted"
                )));
            }
            prev = Some(e.hub);
        }
    }
    Ok(())
}

/// The CSR invariants of the flat encoding in one call. The copying loaders
/// call the two halves around [`Ranking`] construction (which already
/// validates the permutation), so the order array is only scanned once.
fn validate_csr(
    n: usize,
    offsets: &[u64],
    entries: &[LabelEntry],
    m64: u64,
) -> Result<(), PersistError> {
    validate_offsets(n, offsets, m64)?;
    validate_hub_sort(n, offsets, entries)
}

/// Validates a compressed entries section against already-validated CSR
/// offsets: the skip table starts at 0, rises monotonically and ends at the
/// blob length; every vertex's run decodes to exactly its declared label
/// count with canonical varints, strictly increasing in-range hubs, and
/// consumes exactly its skip-table byte span. When `sink` is given the
/// decoded entries are appended to it (the copying loader); the view path
/// validates without materializing anything.
fn validate_compressed_entries(
    skip: &[u64],
    blob: &[u8],
    offsets: &[u64],
    mut sink: Option<&mut Vec<LabelEntry>>,
) -> Result<(), PersistError> {
    let n = offsets.len() - 1;
    debug_assert_eq!(skip.len(), n + 1);
    if skip[0] != 0 {
        return Err(PersistError::Malformed(format!(
            "skip table must start at 0, found {}",
            skip[0]
        )));
    }
    if let Some(w) = skip.windows(2).find(|w| w[0] > w[1]) {
        return Err(PersistError::Malformed(format!(
            "skip table must be monotonically non-decreasing, found {} before {}",
            w[0], w[1]
        )));
    }
    // layout_v2 sized the blob from skip[n], so this can only trip when the
    // caller assembled the slices itself.
    if skip[n] != blob.len() as u64 {
        return Err(PersistError::Malformed(format!(
            "final skip offset {} disagrees with the encoded blob length {}",
            skip[n],
            blob.len()
        )));
    }
    for v in 0..n {
        let run = &blob[skip[v] as usize..skip[v + 1] as usize];
        let count = (offsets[v + 1] - offsets[v]) as usize;
        let mut pos = 0usize;
        let mut prev: Option<u32> = None;
        let malformed =
            |msg: &str| PersistError::Malformed(format!("compressed run of vertex {v}: {msg}"));
        for _ in 0..count {
            let gap = read_uvarint_canonical(run, &mut pos).map_err(&malformed)?;
            let dist = read_uvarint_canonical(run, &mut pos).map_err(&malformed)?;
            let hub64 = match prev {
                None => gap,
                Some(p) => {
                    if gap == 0 {
                        return Err(malformed("zero hub gap (labels must be strictly sorted)"));
                    }
                    u64::from(p)
                        .checked_add(gap)
                        .ok_or_else(|| malformed("hub gap overflows the u32 rank position space"))?
                }
            };
            if hub64 >= n as u64 {
                return Err(PersistError::Malformed(format!(
                    "vertex {v} has a label with hub position {hub64} outside 0..{n}"
                )));
            }
            let hub = hub64 as u32;
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(LabelEntry::new(hub, dist));
            }
            prev = Some(hub);
        }
        if pos != run.len() {
            return Err(malformed("trailing bytes beyond the declared label count"));
        }
    }
    Ok(())
}

/// Serializes `index` into the current (v2) `.chl` byte format with the
/// default options (flat entries).
pub fn to_bytes(index: &FlatIndex) -> Vec<u8> {
    to_bytes_with(index, &SaveOptions::default())
}

/// Delta+varint encodes every label run, returning the per-vertex skip
/// table (`skip[v]` = byte offset of vertex `v`'s run; `skip[n]` = blob
/// length) and the encoded blob.
fn encode_entries(offsets: &[u64], entries: &[LabelEntry]) -> (Vec<u64>, Vec<u8>) {
    let n = offsets.len() - 1;
    let mut skip = Vec::with_capacity(n + 1);
    // Labels average a few bytes each once delta+varint encoded.
    let mut blob = Vec::with_capacity(entries.len() * 4);
    skip.push(0);
    for v in 0..n {
        let run = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for e in run {
            let gap = match prev {
                None => u64::from(e.hub),
                Some(p) => u64::from(e.hub - p),
            };
            write_uvarint(&mut blob, gap);
            write_uvarint(&mut blob, e.dist);
            prev = Some(e.hub);
        }
        skip.push(blob.len() as u64);
    }
    (skip, blob)
}

/// Serializes `index` into the v2 `.chl` byte format under `options`:
/// flat 16-byte entry records by default, the delta+varint compressed
/// entries section (flags bit 0) when `options.compress` is set.
pub fn to_bytes_with(index: &FlatIndex, options: &SaveOptions) -> Vec<u8> {
    let n = index.num_vertices();
    let m = index.total_labels();
    // Encoding up front makes the exact output size computable either way,
    // so the buffer never reallocates mid-write.
    let encoded = options
        .compress
        .then(|| encode_entries(index.offsets(), index.entries()));
    let capacity = match &encoded {
        Some((skip, blob)) => {
            let prefix =
                pad_to_align((n as u64) * 4).expect("index fits in memory") as usize + (n + 1) * 8;
            let entries_len = skip.len() * 8
                + pad_to_align(blob.len() as u64).expect("index fits in memory") as usize;
            HEADER_LEN_V2 + prefix + entries_len
        }
        None => {
            HEADER_LEN_V2
                + expected_payload_len_v2(n as u64, m as u64)
                    .expect("in-memory index fits in memory")
        }
    };
    let mut buf = Vec::with_capacity(capacity);

    let flags = if options.compress {
        FLAG_COMPRESSED_ENTRIES
    } else {
        0
    };
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.extend_from_slice(&[0u8; 12]); // three crc placeholders

    let ranking_start = buf.len();
    for &v in index.ranking().order() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    while !buf.len().is_multiple_of(SECTION_ALIGN) {
        buf.push(0);
    }
    let offsets_start = buf.len();
    for &off in index.offsets() {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    let entries_start = buf.len();
    if let Some((skip, blob)) = &encoded {
        for &s in skip {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(blob);
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
    } else {
        for e in index.entries() {
            buf.extend_from_slice(&e.hub.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&e.dist.to_le_bytes());
        }
    }

    // Each section is checksummed independently — a writer streaming
    // sections to disk can finalize each CRC as the section completes.
    let crc_ranking = crc32(&buf[ranking_start..offsets_start]);
    let crc_offsets = crc32(&buf[offsets_start..entries_start]);
    let crc_entries = crc32(&buf[entries_start..]);
    buf[28..32].copy_from_slice(&crc_ranking.to_le_bytes());
    buf[32..36].copy_from_slice(&crc_offsets.to_le_bytes());
    buf[36..40].copy_from_slice(&crc_entries.to_le_bytes());
    buf
}

/// Serializes `index` into the legacy v1 packed format. Kept for
/// compatibility tests and for producing files older readers understand; new
/// files should use [`to_bytes`].
pub fn to_bytes_v1(index: &FlatIndex) -> Vec<u8> {
    let n = index.num_vertices();
    let m = index.total_labels();
    let payload_len =
        expected_payload_len_v1(n as u64, m as u64).expect("in-memory index fits in memory");
    let mut buf = Vec::with_capacity(HEADER_LEN_V1 + payload_len);

    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION_V1.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder

    for &v in index.ranking().order() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for &off in index.offsets() {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    for e in index.entries() {
        buf.extend_from_slice(&e.hub.to_le_bytes());
        buf.extend_from_slice(&e.dist.to_le_bytes());
    }

    let crc = crc32(&buf[HEADER_LEN_V1..]);
    buf[24..28].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Little-endian cursor over a byte slice. All reads are bounds-checked by
/// the caller having verified the total length up front.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        s
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("length checked"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("length checked"))
    }
}

/// Parses just the fixed header, validating magic, version and flags but not
/// the payload. `data` must hold the full header for its version.
pub fn parse_header(data: &[u8]) -> Result<FileHeader, PersistError> {
    if data.len() < 8 {
        return Err(PersistError::Truncated {
            expected: HEADER_LEN_V1,
            found: data.len(),
        });
    }
    let mut cur = Cursor::new(data);
    let magic: [u8; 4] = cur.take(4).try_into().expect("length checked");
    if &magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = cur.get_u32();
    let header_len = match version {
        VERSION_V1 => HEADER_LEN_V1,
        VERSION => HEADER_LEN_V2,
        found => return Err(PersistError::UnsupportedVersion { found }),
    };
    if data.len() < header_len {
        return Err(PersistError::Truncated {
            expected: header_len,
            found: data.len(),
        });
    }
    let num_vertices = cur.get_u64();
    let num_entries = cur.get_u64();
    let (flags, checksums) = if version == VERSION_V1 {
        (0, Checksums::WholePayload(cur.get_u32()))
    } else {
        let flags = cur.get_u32();
        if flags & !FLAGS_KNOWN != 0 {
            return Err(PersistError::UnsupportedFlags { found: flags });
        }
        let checksums = Checksums::PerSection {
            ranking: cur.get_u32(),
            offsets: cur.get_u32(),
            entries: cur.get_u32(),
        };
        (flags, checksums)
    };
    Ok(FileHeader {
        version,
        num_vertices,
        num_entries,
        flags,
        checksums,
    })
}

/// Deserializes an index from `.chl` bytes, accepting both the current v2
/// layout and legacy v1 files. This is the **copying** path: every section
/// lands in a fresh allocation. For serving without the copy, see
/// [`view_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<FlatIndex, PersistError> {
    let header = parse_header(data)?;
    match header.version {
        VERSION_V1 => from_bytes_v1(data, &header),
        _ => from_bytes_v2(data, &header),
    }
}

fn from_bytes_v1(data: &[u8], header: &FileHeader) -> Result<FlatIndex, PersistError> {
    let n64 = header.num_vertices;
    let m64 = header.num_entries;
    if n64 > VertexId::MAX as u64 {
        return Err(PersistError::Malformed(format!(
            "{n64} vertices exceeds the u32 vertex id space"
        )));
    }
    let payload_len = expected_payload_len_v1(n64, m64).ok_or_else(|| {
        PersistError::Malformed(format!(
            "declared dimensions (n = {n64}, m = {m64}) overflow the addressable size"
        ))
    })?;
    let expected = HEADER_LEN_V1 + payload_len;
    if data.len() < expected {
        return Err(PersistError::Truncated {
            expected,
            found: data.len(),
        });
    }
    if data.len() > expected {
        return Err(PersistError::TrailingBytes {
            extra: data.len() - expected,
        });
    }

    let computed = crc32(&data[HEADER_LEN_V1..]);
    let Checksums::WholePayload(stored) = header.checksums else {
        unreachable!("v1 headers always parse a whole-payload checksum");
    };
    if computed != stored {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }

    let n = n64 as usize;
    let m = m64 as usize;
    let mut cur = Cursor::new(data);
    cur.seek(HEADER_LEN_V1);

    let order: Vec<VertexId> = (0..n).map(|_| cur.get_u32()).collect();
    let offsets: Vec<u64> = (0..=n).map(|_| cur.get_u64()).collect();
    let mut entries = Vec::with_capacity(m);
    for _ in 0..m {
        let hub = cur.get_u32();
        let dist = cur.get_u64();
        entries.push(LabelEntry::new(hub, dist));
    }
    let ranking = Ranking::from_order(order, n)
        .map_err(|e| PersistError::Malformed(format!("ranking section: {e}")))?;
    validate_csr(n, &offsets, &entries, m64)?;
    Ok(FlatIndex::from_validated_parts(offsets, entries, ranking))
}

fn from_bytes_v2(data: &[u8], header: &FileHeader) -> Result<FlatIndex, PersistError> {
    let layout = layout_v2(
        header.num_vertices,
        header.num_entries,
        header.is_compressed(),
        data,
    )?;
    check_sections_v2(data, header, &layout)?;

    let mut cur = Cursor::new(data);
    cur.seek(layout.ranking_data.start);
    let order: Vec<VertexId> = (0..layout.n).map(|_| cur.get_u32()).collect();
    cur.seek(layout.offsets.start);
    let offsets: Vec<u64> = (0..=layout.n).map(|_| cur.get_u64()).collect();
    let ranking = Ranking::from_order(order, layout.n)
        .map_err(|e| PersistError::Malformed(format!("ranking section: {e}")))?;
    validate_offsets(layout.n, &offsets, header.num_entries)?;
    let entries = match &layout.compressed {
        None => {
            cur.seek(layout.entries.start);
            let mut entries = Vec::with_capacity(layout.m);
            for _ in 0..layout.m {
                let hub = cur.get_u32();
                cur.take(4); // reserved, checked zero above
                let dist = cur.get_u64();
                entries.push(LabelEntry::new(hub, dist));
            }
            validate_hub_sort(layout.n, &offsets, &entries)?;
            entries
        }
        Some(c) => {
            // This is the decode-on-load path: validation and
            // materialization into the flat in-memory layout in one pass.
            cur.seek(c.skip.start);
            let skip: Vec<u64> = (0..=layout.n).map(|_| cur.get_u64()).collect();
            let mut entries = Vec::with_capacity(layout.m);
            validate_compressed_entries(
                &skip,
                &data[c.blob_data.clone()],
                &offsets,
                Some(&mut entries),
            )?;
            entries
        }
    };
    Ok(FlatIndex::from_validated_parts(offsets, entries, ranking))
}

// --- Zero-copy views -----------------------------------------------------
//
// On little-endian hosts a validated v2 buffer is reinterpreted in place:
// the ranking section becomes `&[u32]`, the offsets section `&[u64]` and the
// entries section `&[LabelEntry]` (whose #[repr(C)] layout matches the
// 16-byte record exactly). Alignment holds because every section offset is a
// multiple of 8 and the caller's buffer base is checked to be 8-byte
// aligned; every bit pattern of the underlying integers is a valid value, so
// the casts cannot manufacture invalid data — semantic validation happens on
// the cast slices afterwards, exactly as for the copying path.

/// `true` when `data`'s base address allows in-place reinterpretation of
/// 8-byte-aligned sections.
fn is_view_aligned(data: &[u8]) -> bool {
    (data.as_ptr() as usize).is_multiple_of(SECTION_ALIGN)
}

#[cfg(target_endian = "little")]
fn cast_u32s(bytes: &[u8]) -> &[u32] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(4));
    debug_assert!(bytes.len().is_multiple_of(4));
    // SAFETY: the caller (layout_v2 + is_view_aligned) guarantees 4-byte
    // alignment and a length that is a multiple of 4; any bit pattern is a
    // valid u32, and the lifetime is inherited from `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}

#[cfg(target_endian = "little")]
fn cast_u64s(bytes: &[u8]) -> &[u64] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(8));
    debug_assert!(bytes.len().is_multiple_of(8));
    // SAFETY: as for cast_u32s, with 8-byte alignment.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
}

#[cfg(target_endian = "little")]
fn cast_entries(bytes: &[u8]) -> &[LabelEntry] {
    debug_assert!((bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<LabelEntry>()));
    debug_assert!(bytes.len().is_multiple_of(ENTRY_LEN_V2));
    // SAFETY: LabelEntry is #[repr(C)] with size 16 and align 8 (asserted at
    // compile time in labels.rs); the record layout matches field-for-field,
    // both integer fields accept any bit pattern, and the four bytes the
    // cast lands on LabelEntry's internal padding are never read.
    unsafe {
        std::slice::from_raw_parts(
            bytes.as_ptr() as *const LabelEntry,
            bytes.len() / ENTRY_LEN_V2,
        )
    }
}

/// Validates `.chl` v2 bytes of **either entries encoding** and returns a
/// borrowed [`IndexView`] served straight from `data`: flat files
/// reinterpret their sections in place exactly like [`view_bytes`], while
/// compressed files borrow the skip table and encoded blob and stream-decode
/// the two label runs each query touches. Validation is the same battery
/// the copying loader runs (length, per-section checksums, padding,
/// semantic invariants — including a full decode pass over every compressed
/// run); the only transient allocation is the permutation-check scratch.
///
/// Requirements beyond [`from_bytes`]: the buffer's base address must be
/// 8-byte aligned (use [`AlignedBytes`] or an mmap, both of which guarantee
/// it) and the host little-endian; otherwise [`PersistError::Unviewable`] is
/// returned. v1 files report [`PersistError::NotZeroCopy`].
pub fn open_view(data: &[u8]) -> Result<IndexView<'_>, PersistError> {
    let header = parse_header(data)?;
    if header.version == VERSION_V1 {
        return Err(PersistError::NotZeroCopy {
            version: header.version,
        });
    }
    if !is_view_aligned(data) {
        return Err(PersistError::Unviewable {
            reason: "base address is not 8-byte aligned",
        });
    }
    #[cfg(not(target_endian = "little"))]
    {
        return Err(PersistError::Unviewable {
            reason: "host is big-endian",
        });
    }
    #[cfg(target_endian = "little")]
    {
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.is_compressed(),
            data,
        )?;
        check_sections_v2(data, &header, &layout)?;
        let order = cast_u32s(&data[layout.ranking_data.clone()]);
        let offsets = cast_u64s(&data[layout.offsets.clone()]);
        check_permutation(order)?;
        validate_offsets(layout.n, offsets, header.num_entries)?;
        match &layout.compressed {
            None => {
                let entries = cast_entries(&data[layout.entries.clone()]);
                validate_hub_sort(layout.n, offsets, entries)?;
                Ok(IndexView::Flat(FlatView::from_validated_parts(
                    order, offsets, entries,
                )))
            }
            Some(c) => {
                let skip = cast_u64s(&data[c.skip.clone()]);
                let blob = &data[c.blob_data.clone()];
                validate_compressed_entries(skip, blob, offsets, None)?;
                Ok(IndexView::Compressed(
                    CompressedView::from_validated_compressed_parts(order, offsets, skip, blob),
                ))
            }
        }
    }
}

/// Validates `.chl` v2 bytes and returns a [`FlatView`] whose ranking,
/// offsets and entries slices are **borrowed from `data` in place** — no
/// label byte is copied. This is the flat-only strict form of
/// [`open_view`]: a compressed file cannot back a `FlatView` (its entries
/// are not 16-byte records) and reports [`PersistError::Unviewable`];
/// serve it through [`open_view`] / `MmapIndex`, or decode it with
/// [`from_bytes`].
pub fn view_bytes(data: &[u8]) -> Result<FlatView<'_>, PersistError> {
    match open_view(data)? {
        IndexView::Flat(view) => Ok(view),
        IndexView::Compressed(_) => Err(PersistError::Unviewable {
            reason: "entries section is delta+varint compressed; serve it through \
                     open_view / MmapIndex or load it with the copying reader",
        }),
    }
}

/// Rebuilds the view over a buffer that [`open_view`] has already fully
/// validated, skipping every check. Used by `MmapIndex` to hand out views
/// per query without re-walking the file.
///
/// # Safety
///
/// `data` must be byte-identical to a buffer `open_view` previously
/// accepted with these exact `n`/`m`/`compressed` parameters, with the same
/// 8-byte-aligned base-address guarantee still holding.
pub(crate) unsafe fn view_assuming_valid(
    data: &[u8],
    n: usize,
    m: usize,
    compressed: bool,
) -> IndexView<'_> {
    #[cfg(target_endian = "little")]
    {
        let layout = layout_v2(n as u64, m as u64, compressed, data)
            .expect("dimensions were validated at open time");
        let order = cast_u32s(&data[layout.ranking_data.clone()]);
        let offsets = cast_u64s(&data[layout.offsets.clone()]);
        match &layout.compressed {
            None => {
                let entries = cast_entries(&data[layout.entries.clone()]);
                IndexView::Flat(FlatView::from_validated_parts(order, offsets, entries))
            }
            Some(c) => {
                let skip = cast_u64s(&data[c.skip.clone()]);
                let blob = &data[c.blob_data.clone()];
                IndexView::Compressed(CompressedView::from_validated_compressed_parts(
                    order, offsets, skip, blob,
                ))
            }
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = (data, n, m, compressed);
        unreachable!("open_view never validates a buffer on a big-endian host");
    }
}

/// An owned byte buffer whose base address is guaranteed 8-byte aligned —
/// the backing [`view_bytes`] needs when the bytes do not come from an mmap.
/// `Vec<u8>` makes no alignment promise, so serialized bytes destined for a
/// zero-copy view are staged here instead.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// An aligned buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies `data` into a fresh aligned buffer.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut buf = Self::zeroed(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        buf
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the u64 backing store holds at least `len` bytes
        // (allocated in zeroed), u8 has no alignment requirement, and the
        // lifetime is tied to &self.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// The buffer contents, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as for as_slice, with exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedBytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// Reads a whole file into an [`AlignedBytes`] buffer, the buffered
/// stand-in for an mmap when mapping is unavailable or disabled.
pub fn read_aligned<P: AsRef<Path>>(path: P) -> Result<AlignedBytes, PersistError> {
    use std::io::Read;
    let mut file = fs::File::open(path)?;
    let len = usize::try_from(file.metadata()?.len())
        .map_err(|_| PersistError::Malformed("file too large to address".into()))?;
    let mut buf = AlignedBytes::zeroed(len);
    file.read_exact(buf.as_mut_slice())?;
    Ok(buf)
}

/// Writes `index` to `path` in the current (v2) `.chl` format, overwriting
/// any existing file. The write is not atomic; writers that must never
/// expose a torn file should write to a sibling temp path and rename.
pub fn save<P: AsRef<Path>>(index: &FlatIndex, path: P) -> Result<(), PersistError> {
    save_with(index, path, &SaveOptions::default())
}

/// Writes `index` to `path` in the v2 `.chl` format under explicit
/// [`SaveOptions`] (`compress: true` for the delta+varint entries section).
pub fn save_with<P: AsRef<Path>>(
    index: &FlatIndex,
    path: P,
    options: &SaveOptions,
) -> Result<(), PersistError> {
    fs::write(path, to_bytes_with(index, options))?;
    Ok(())
}

/// Reads an index from a `.chl` file written by [`save`] (either version),
/// through the copying path.
pub fn load<P: AsRef<Path>>(path: P) -> Result<FlatIndex, PersistError> {
    let data = fs::read(path)?;
    from_bytes(&data)
}

/// Reads and validates just the header of a `.chl` file.
pub fn load_header<P: AsRef<Path>>(path: P) -> Result<FileHeader, PersistError> {
    use std::io::Read;
    let mut file = fs::File::open(path)?;
    let mut buf = [0u8; HEADER_LEN_V2];
    let mut read = 0;
    while read < HEADER_LEN_V2 {
        match file.read(&mut buf[read..])? {
            0 => break,
            k => read += k,
        }
    }
    parse_header(&buf[..read])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HubLabelIndex;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    /// Recomputes and patches the three v2 section checksums of a forged
    /// buffer so corruption tests can reach the post-checksum validators.
    fn reseal_v2(buf: &mut [u8]) {
        let header = parse_header(buf).unwrap();
        let layout = layout_v2(
            header.num_vertices,
            header.num_entries,
            header.is_compressed(),
            buf,
        )
        .unwrap();
        let crc_ranking = crc32(&buf[layout.ranking_section.clone()]);
        let crc_offsets = crc32(&buf[layout.offsets.clone()]);
        let crc_entries = crc32(&buf[layout.entries.clone()]);
        buf[28..32].copy_from_slice(&crc_ranking.to_le_bytes());
        buf[32..36].copy_from_slice(&crc_offsets.to_le_bytes());
        buf[36..40].copy_from_slice(&crc_entries.to_le_bytes());
    }

    #[test]
    fn forged_compressed_entry_count_is_rejected_not_allocated() {
        let flat = tiny_flat();
        let mut bytes = to_bytes_with(&flat, &SaveOptions::compressed());
        // Forge the header's m to a count no blob of this size could hold
        // (every encoded entry costs at least two bytes). Before the layout
        // bound this reached `Vec::with_capacity(m)` in the copying loader —
        // a capacity-overflow abort instead of a typed error. The guard runs
        // before the checksums, so the stale section CRCs don't matter.
        bytes[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::Malformed(msg)) if msg.contains("cannot fit")
        ));
        let aligned = AlignedBytes::from_slice(&bytes);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::Malformed(_))
        ));
        // m = u64::MAX must trip the same guard, not overflow the bound
        // arithmetic.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        // Serialization is deterministic.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn v1_bytes_still_load_through_the_copying_path() {
        let flat = tiny_flat();
        let v1 = to_bytes_v1(&flat);
        let back = from_bytes(&v1).unwrap();
        assert_eq!(back, flat);
        assert_eq!(parse_header(&v1).unwrap().version, VERSION_V1);
        // ...but cannot back a zero-copy view.
        let aligned = AlignedBytes::from_slice(&v1);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::NotZeroCopy { version: 1 })
        ));
    }

    #[test]
    fn header_describes_the_file() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.num_vertices, 3);
        assert_eq!(header.num_entries, 5);
        assert_eq!(header.header_len(), HEADER_LEN_V2);
        assert_eq!(header.expected_file_len(), Some(bytes.len()));
        assert!(matches!(header.checksums, Checksums::PerSection { .. }));

        let v1 = to_bytes_v1(&flat);
        let header = parse_header(&v1).unwrap();
        assert_eq!(header.header_len(), HEADER_LEN_V1);
        assert_eq!(header.expected_file_len(), Some(v1.len()));
        assert!(matches!(header.checksums, Checksums::WholePayload(_)));
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        // n = 3: the ranking data is 12 bytes, so the section carries 4
        // padding bytes and the offsets section still starts aligned.
        let bytes = to_bytes(&tiny_flat());
        let layout = layout_v2(3, 5, false, &bytes).unwrap();
        for start in [
            layout.ranking_section.start,
            layout.offsets.start,
            layout.entries.start,
        ] {
            assert!(start.is_multiple_of(SECTION_ALIGN), "offset {start}");
        }
        assert_eq!(layout.ranking_section.len(), 16);
        assert_eq!(layout.ranking_data.len(), 12);
    }

    #[test]
    fn empty_and_zero_vertex_indexes_round_trip() {
        let empty = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(5)));
        assert_eq!(from_bytes(&to_bytes(&empty)).unwrap(), empty);
        let zero = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        assert_eq!(from_bytes(&to_bytes(&zero)).unwrap(), zero);
        // The degenerate shapes also view.
        let aligned = AlignedBytes::from_slice(&to_bytes(&zero));
        assert_eq!(view_bytes(&aligned).unwrap().num_vertices(), 0);
    }

    #[test]
    fn view_borrows_the_buffer_in_place() {
        let flat = tiny_flat();
        let aligned = AlignedBytes::from_slice(&to_bytes(&flat));
        let view = view_bytes(&aligned).unwrap();

        // The view's slices point INTO the serialized buffer: zero copy.
        let base = aligned.as_slice().as_ptr() as usize;
        let end = base + aligned.len();
        for ptr in [
            view.offsets().as_ptr() as usize,
            view.entries().as_ptr() as usize,
            view.order().as_ptr() as usize,
        ] {
            assert!((base..end).contains(&ptr), "slice escaped the buffer");
        }

        // And it answers exactly like the owned index.
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        assert_eq!(FlatIndex::from_view(view), flat);
    }

    #[test]
    fn misaligned_buffers_are_refused_not_recast() {
        let bytes = to_bytes(&tiny_flat());
        let mut staging = AlignedBytes::zeroed(bytes.len() + 1);
        staging.as_mut_slice()[1..].copy_from_slice(&bytes);
        let misaligned = &staging.as_slice()[1..];
        assert!(matches!(
            view_bytes(misaligned),
            Err(PersistError::Unviewable { .. })
        ));
        // The copying loader does not care about alignment.
        assert!(from_bytes(misaligned).is_ok());
    }

    #[test]
    fn corruption_is_detected_with_typed_errors() {
        let bytes = to_bytes(&tiny_flat());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            from_bytes(&bad_magic),
            Err(PersistError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_bytes(&bad_version),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));

        // Bit 0 (compressed entries) is understood; any other bit is not.
        let mut bad_flags = bytes.clone();
        bad_flags[24] = 2;
        assert!(matches!(
            from_bytes(&bad_flags),
            Err(PersistError::UnsupportedFlags { found: 2 })
        ));

        // Forging the compressed bit onto a flat file changes the declared
        // layout out from under the payload: it must fail (the exact error
        // depends on what the reinterpreted skip table claims), never load.
        let mut forged_compressed = bytes.clone();
        forged_compressed[24] = 1;
        assert!(from_bytes(&forged_compressed).is_err());

        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            from_bytes(truncated),
            Err(PersistError::Truncated { .. })
        ));

        assert!(matches!(
            from_bytes(&bytes[..10]),
            Err(PersistError::Truncated { .. })
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            from_bytes(&trailing),
            Err(PersistError::TrailingBytes { extra: 1 })
        ));

        // Flip one entry byte: caught by that section's checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Entries,
                ..
            })
        ));

        // Flip a ranking padding byte (n = 3 leaves 4 pad bytes): the
        // ranking checksum covers its padding.
        let mut pad_flip = bytes.clone();
        pad_flip[HEADER_LEN_V2 + 12] ^= 0xFF;
        assert!(matches!(
            from_bytes(&pad_flip),
            Err(PersistError::SectionChecksumMismatch {
                section: Section::Ranking,
                ..
            })
        ));

        // Flip a stored checksum byte itself: also a mismatch.
        let mut bad_crc = bytes.clone();
        bad_crc[29] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bad_crc),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));

        // The view path reports the identical errors.
        let aligned = AlignedBytes::from_slice(&flipped);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));
    }

    #[test]
    fn forged_padding_is_rejected_even_with_valid_checksums() {
        // Non-zero ranking tail padding, checksums recomputed to match.
        let mut forged = to_bytes(&tiny_flat());
        forged[HEADER_LEN_V2 + 12] = 0xAB;
        reseal_v2(&mut forged);
        assert!(matches!(
            from_bytes(&forged),
            Err(PersistError::NonZeroPadding { .. })
        ));

        // Non-zero reserved bytes inside an entry record.
        let mut forged = to_bytes(&tiny_flat());
        let layout = layout_v2(3, 5, false, &forged).unwrap();
        forged[layout.entries.start + 5] = 0xCD;
        reseal_v2(&mut forged);
        let err = from_bytes(&forged).unwrap_err();
        assert!(matches!(
            err,
            PersistError::NonZeroPadding {
                offset
            } if offset == layout.entries.start + 5
        ));
        let aligned = AlignedBytes::from_slice(&forged);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::NonZeroPadding { .. })
        ));
    }

    #[test]
    fn semantically_invalid_payloads_are_malformed() {
        // Hand-craft a v2 file whose checksums are valid but whose ranking
        // is not a permutation (vertex 0 listed twice).
        let n = 2u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // flags
        buf.extend_from_slice(&[0u8; 12]); // crc placeholders
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[0] = 0
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[1] = 0 (dup)
        for _ in 0..3 {
            buf.extend_from_slice(&0u64.to_le_bytes()); // offsets
        }
        reseal_v2(&mut buf);
        assert!(matches!(from_bytes(&buf), Err(PersistError::Malformed(_))));
        let aligned = AlignedBytes::from_slice(&buf);
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn files_round_trip_on_disk() {
        let flat = tiny_flat();
        let path = std::env::temp_dir().join(format!(
            "chl-persist-test-{}-{:?}.chl",
            std::process::id(),
            std::thread::current().id()
        ));
        save(&flat, &path).unwrap();
        let header = load_header(&path).unwrap();
        assert_eq!(header.num_vertices, 3);
        assert_eq!(header.version, VERSION);
        let back = load(&path).unwrap();
        assert_eq!(back, flat);
        let aligned = read_aligned(&path).unwrap();
        assert_eq!(view_bytes(&aligned).unwrap().query(0, 2), flat.query(0, 2));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn aligned_bytes_guarantee_alignment() {
        for len in [0usize, 1, 7, 8, 9, 41] {
            let buf = AlignedBytes::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.is_empty(), len == 0);
            assert!((buf.as_slice().as_ptr() as usize).is_multiple_of(8));
            assert!(buf.iter().all(|&b| b == 0));
        }
        let mut buf = AlignedBytes::from_slice(&[1, 2, 3]);
        buf[1] = 9;
        assert_eq!(&buf[..], &[1, 9, 3]);
    }

    fn tiny_compressed_bytes() -> Vec<u8> {
        to_bytes_with(&tiny_flat(), &SaveOptions::compressed())
    }

    #[test]
    fn uvarints_round_trip_canonically() {
        for x in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(read_uvarint_canonical(&buf, &mut pos), Ok(x));
            assert_eq!(pos, buf.len());
        }
        // Overlong: 1 encoded in two groups.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x81, 0x00], &mut pos).is_err());
        // Truncated: continuation bit with nothing after it.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x80], &mut pos).is_err());
        // Overflow: 11 continuation groups.
        let mut pos = 0;
        assert!(read_uvarint_canonical(&[0x80u8; 11], &mut pos).is_err());
        // Overflow: 10th group carrying more than u64's last bit.
        let mut pos = 0;
        let mut wide = vec![0x80u8; 9];
        wide.push(0x02);
        assert!(read_uvarint_canonical(&wide, &mut pos).is_err());
    }

    #[test]
    fn compressed_bytes_round_trip_and_are_byte_stable() {
        let flat = tiny_flat();
        let bytes = tiny_compressed_bytes();
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.flags, FLAG_COMPRESSED_ENTRIES);
        assert!(header.is_compressed());
        assert_eq!(header.expected_file_len(), None);

        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        // Decode → re-encode reproduces the file byte for byte (canonical
        // varints make the encoding injective).
        assert_eq!(to_bytes_with(&back, &SaveOptions::compressed()), bytes);
        // And the flat serialization of the decoded index matches the
        // directly written flat file: the encodings are interchangeable.
        assert_eq!(to_bytes(&back), to_bytes(&flat));
    }

    #[test]
    fn compressed_views_stream_from_the_buffer_in_place() {
        let flat = tiny_flat();
        let aligned = AlignedBytes::from_slice(&tiny_compressed_bytes());
        let view = open_view(&aligned).unwrap();
        assert!(view.is_compressed());
        assert_eq!(view.num_vertices(), 3);
        assert_eq!(view.total_labels(), 5);
        assert!(view.encoding().contains("compressed"));
        // The compressed storage footprint is what the buffer holds, not
        // the 16-byte-per-entry decoded size.
        assert!(view.memory_bytes() < flat.memory_bytes());
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(view.query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(view.query_with_hub(u, v), flat.query_with_hub(u, v));
            }
        }
        assert_eq!(view.to_owned_index(), flat);

        // The strict flat view cannot back a compressed file...
        assert!(matches!(
            view_bytes(&aligned),
            Err(PersistError::Unviewable { .. })
        ));
        // ...while flat files also serve through open_view.
        let flat_aligned = AlignedBytes::from_slice(&to_bytes(&flat));
        let flat_view = open_view(&flat_aligned).unwrap();
        assert!(!flat_view.is_compressed());
        assert_eq!(flat_view.query(0, 2), flat.query(0, 2));
    }

    #[test]
    fn compressed_corruption_is_detected_with_typed_errors() {
        let bytes = tiny_compressed_bytes();

        // Any blob byte flip trips the entries-section checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));
        let aligned = AlignedBytes::from_slice(&flipped);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));

        // Truncation and trailing bytes are caught before checksums.
        assert!(matches!(
            from_bytes(&bytes[..bytes.len() - 8]),
            Err(PersistError::Truncated { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0; 8]);
        assert!(matches!(
            from_bytes(&trailing),
            Err(PersistError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn forged_compressed_payloads_are_rejected_after_resealing() {
        let header = parse_header(&tiny_compressed_bytes()).unwrap();
        let layout = |buf: &[u8]| layout_v2(header.num_vertices, header.num_entries, true, buf);

        // A non-monotone skip table, checksums recomputed to match.
        let mut forged = tiny_compressed_bytes();
        let skip = layout(&forged).unwrap().compressed.unwrap().skip;
        forged[skip.start + 8..skip.start + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal_v2(&mut forged);
        let err = from_bytes(&forged).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");

        // An overlong varint (0x81 0x00 spells 1 in two groups) in the
        // first run, blob re-padded and resealed: canonicality is enforced,
        // which is what keeps re-encoding byte-stable.
        let flat = tiny_flat();
        let (skip_table, mut blob) = encode_entries(flat.offsets(), flat.entries());
        // Vertex 0's first gap varint is a single byte (hub position 0);
        // rewrite it as the same value in two groups.
        assert!(blob[0] & 0x80 == 0);
        blob.splice(0..1, [0x80 | blob[0], 0x00]);
        let mut skip2: Vec<u64> = skip_table
            .iter()
            .map(|&s| if s > 0 { s + 1 } else { 0 })
            .collect();
        // Rebuild the file by hand around the forged blob.
        let n = flat.num_vertices() as u64;
        let m = flat.total_labels() as u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf.extend_from_slice(&FLAG_COMPRESSED_ENTRIES.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        for &v in flat.ranking().order() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
        for &off in flat.offsets() {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        for s in skip2.drain(..) {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&blob);
        while !buf.len().is_multiple_of(SECTION_ALIGN) {
            buf.push(0);
        }
        reseal_v2(&mut buf);
        let err = from_bytes(&buf).unwrap_err();
        assert!(
            err.to_string().contains("overlong"),
            "expected overlong-varint rejection, got: {err}"
        );
        let aligned = AlignedBytes::from_slice(&buf);
        assert!(matches!(
            open_view(&aligned),
            Err(PersistError::Malformed(_))
        ));

        // Non-zero blob tail padding, resealed: NonZeroPadding, as for flat.
        let mut forged = tiny_compressed_bytes();
        let l = layout(&forged).unwrap();
        if l.compressed.as_ref().unwrap().blob_data.end < l.entries.end {
            let pad_at = l.compressed.unwrap().blob_data.end;
            forged[pad_at] = 0xEE;
            reseal_v2(&mut forged);
            assert!(matches!(
                from_bytes(&forged),
                Err(PersistError::NonZeroPadding { offset }) if offset == pad_at
            ));
        }
    }

    #[test]
    fn compressed_entries_section_is_at_least_2x_smaller_on_a_grid() {
        use chl_graph::generators::{grid_network, GridOptions};
        let g = grid_network(
            &GridOptions {
                rows: 10,
                cols: 10,
                ..GridOptions::default()
            },
            7,
        );
        let ranking = chl_ranking::degree_ranking(&g);
        let flat = FlatIndex::from_index(&crate::pll::sequential_pll(&g, &ranking).index);

        let flat_bytes = to_bytes(&flat);
        let comp_bytes = to_bytes_with(&flat, &SaveOptions::compressed());
        let file_ratio = flat_bytes.len() as f64 / comp_bytes.len() as f64;

        let header = parse_header(&comp_bytes).unwrap();
        let encoded = header.entries_section_len(comp_bytes.len() as u64);
        let decoded = header.decoded_entries_len();
        assert_eq!(decoded, flat.total_labels() as u64 * 16);
        assert!(
            encoded * 2 <= decoded,
            "entries section must shrink >= 2x: {encoded} encoded vs {decoded} decoded \
             (whole file {file_ratio:.2}x)"
        );

        // And the flat header reports the flat section size.
        let flat_header = parse_header(&flat_bytes).unwrap();
        assert_eq!(
            flat_header.entries_section_len(flat_bytes.len() as u64),
            decoded
        );
    }

    #[test]
    fn empty_and_zero_vertex_indexes_round_trip_compressed() {
        let empty = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(5)));
        let bytes = to_bytes_with(&empty, &SaveOptions::compressed());
        assert_eq!(from_bytes(&bytes).unwrap(), empty);
        let aligned = AlignedBytes::from_slice(&bytes);
        let view = open_view(&aligned).unwrap();
        assert_eq!(view.query(0, 3), chl_graph::types::INFINITY);
        assert_eq!(view.query(2, 2), 0);

        let zero = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        let bytes = to_bytes_with(&zero, &SaveOptions::compressed());
        assert_eq!(from_bytes(&bytes).unwrap(), zero);
        let aligned = AlignedBytes::from_slice(&bytes);
        assert_eq!(open_view(&aligned).unwrap().num_vertices(), 0);
    }

    #[test]
    fn display_messages_are_informative() {
        let e = PersistError::BadMagic { found: *b"NOPE" };
        assert!(e.to_string().contains("magic"));
        let e = PersistError::UnsupportedVersion { found: 7 };
        assert!(e.to_string().contains('7'));
        let e = PersistError::UnsupportedFlags { found: 3 };
        assert!(e.to_string().contains("flags"));
        let e = PersistError::Truncated {
            expected: 100,
            found: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = PersistError::SectionChecksumMismatch {
            section: Section::Offsets,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("offsets") && e.to_string().contains("checksum"));
        let e = PersistError::NonZeroPadding { offset: 44 };
        assert!(e.to_string().contains("44"));
        let e = PersistError::Unviewable { reason: "why" };
        assert!(e.to_string().contains("why"));
        let e = PersistError::NotZeroCopy { version: 1 };
        assert!(e.to_string().contains("v1"));
        let e = PersistError::TrailingBytes { extra: 3 };
        assert!(e.to_string().contains("trailing"));
        let e = PersistError::Malformed("oops".into());
        assert!(e.to_string().contains("oops"));
    }
}
