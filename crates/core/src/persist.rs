//! The versioned `.chl` on-disk index format.
//!
//! A `.chl` file is a byte-exact dump of a [`FlatIndex`]: the ranking that
//! gives hub positions their meaning, the CSR offsets array and the
//! contiguous label entries. Layout (all integers little-endian, following
//! the `chl_graph::io::binary` conventions):
//!
//! ```text
//! offset  size        field
//! 0       4           magic    "CHLI"
//! 4       4           version  u32, currently 1
//! 8       8           n        u64, number of vertices
//! 16      8           m        u64, total number of label entries
//! 24      4           crc32    u32, CRC-32 (IEEE) of every byte after the header
//! 28      n * 4       ranking  vertex ids, most important first
//! ..      (n+1) * 8   offsets  entries[offsets[v]..offsets[v+1]] labels vertex v
//! ..      m * 12      entries  (u32 hub rank position, u64 distance) pairs
//! ```
//!
//! ## Versioning and compatibility policy
//!
//! `version` is bumped on **any** layout change; readers reject versions they
//! do not know ([`PersistError::UnsupportedVersion`]) rather than guessing.
//! There is no in-place migration: an index is cheap to rebuild from its
//! graph, so old files are regenerated, not converted.
//!
//! ## Corruption detection
//!
//! Loading validates, in order: the magic, the version, that the file length
//! matches the header's dimensions exactly (truncation and trailing garbage
//! are both rejected), the CRC-32 of the payload, and finally the semantic
//! invariants — the ranking is a permutation, the offsets start at zero and
//! rise monotonically to `m`, and every vertex's entries are strictly
//! hub-sorted with in-range hub positions. Every failure is a typed
//! [`PersistError`]; no input, however mangled, panics the loader.

use std::fmt;
use std::fs;
use std::path::Path;

use chl_graph::types::VertexId;
use chl_ranking::Ranking;

use crate::flat::FlatIndex;
use crate::labels::LabelEntry;

/// File magic: "Canonical Hub Label Index".
pub const MAGIC: &[u8; 4] = b"CHLI";
/// Current format version. Bumped on any layout change.
pub const VERSION: u32 = 1;
/// Size of the fixed header in bytes (`magic | version | n | m | crc32`).
pub const HEADER_LEN: usize = 28;
/// Size of one serialized label entry in bytes (`u32 hub | u64 dist`).
pub const ENTRY_LEN: usize = 12;

/// Errors produced while reading or writing `.chl` index files.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `CHLI` magic — not an index file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file was written by a format version this reader does not know.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
    },
    /// The file is shorter than its header claims — an interrupted write or
    /// a truncated copy.
    Truncated {
        /// Bytes the header (or the fixed header size) requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file is longer than its header claims; the surplus would be
    /// silently ignored data, so it is rejected.
    TrailingBytes {
        /// Surplus bytes after the declared payload.
        extra: usize,
    },
    /// The payload checksum does not match — the bytes were corrupted after
    /// the header was written (bit rot, torn write, manual edit).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// The bytes checksum correctly but violate a semantic invariant
    /// (non-permutation ranking, non-monotonic offsets, unsorted or
    /// out-of-range hubs) — a writer bug or a forged file.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a .chl index file: expected magic {MAGIC:?}, found {found:?}"
            ),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported .chl format version {found} (this reader understands up to {VERSION})"
            ),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated .chl file: expected {expected} bytes, found {found}"
            ),
            PersistError::TrailingBytes { extra } => {
                write!(
                    f,
                    ".chl file has {extra} trailing bytes beyond its declared payload"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt .chl payload: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Malformed(msg) => write!(f, "malformed .chl index: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The fixed-size header of a `.chl` file, readable without loading the
/// payload (used by `chl inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Format version stamped in the file.
    pub version: u32,
    /// Number of vertices the index covers.
    pub num_vertices: u64,
    /// Total number of label entries.
    pub num_entries: u64,
    /// CRC-32 of the payload, as stored.
    pub checksum: u32,
}

impl FileHeader {
    /// Total file size in bytes implied by the header's dimensions.
    pub fn expected_file_len(&self) -> Option<usize> {
        expected_payload_len(self.num_vertices, self.num_entries)
            .map(|payload| HEADER_LEN + payload)
    }
}

// --- CRC-32 (IEEE 802.3), table-driven; small enough to vendor rather than
// --- pull a dependency the offline build cannot fetch.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, the checksum the `.chl` header stores.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Payload size implied by the header dimensions, `None` on overflow (which
/// can only arise from a corrupt or hostile header).
fn expected_payload_len(n: u64, m: u64) -> Option<usize> {
    let ranking = n.checked_mul(4)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let entries = m.checked_mul(ENTRY_LEN as u64)?;
    let total = ranking.checked_add(offsets)?.checked_add(entries)?;
    usize::try_from(total).ok()
}

/// Serializes `index` into the `.chl` byte format.
pub fn to_bytes(index: &FlatIndex) -> Vec<u8> {
    let n = index.num_vertices();
    let m = index.total_labels();
    let payload_len =
        expected_payload_len(n as u64, m as u64).expect("in-memory index fits in memory");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload_len);

    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder

    for &v in index.ranking().order() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for &off in index.offsets() {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    for e in index.entries() {
        buf.extend_from_slice(&e.hub.to_le_bytes());
        buf.extend_from_slice(&e.dist.to_le_bytes());
    }

    let crc = crc32(&buf[HEADER_LEN..]);
    buf[24..28].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Little-endian cursor over a byte slice. All reads are bounds-checked by
/// the caller having verified the total length up front.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        s
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("length checked"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("length checked"))
    }
}

/// Parses just the fixed header, validating magic and version but not the
/// payload. `data` must hold at least [`HEADER_LEN`] bytes.
pub fn parse_header(data: &[u8]) -> Result<FileHeader, PersistError> {
    if data.len() < HEADER_LEN {
        return Err(PersistError::Truncated {
            expected: HEADER_LEN,
            found: data.len(),
        });
    }
    let mut cur = Cursor::new(data);
    let magic: [u8; 4] = cur.take(4).try_into().expect("length checked");
    if &magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = cur.get_u32();
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let num_vertices = cur.get_u64();
    let num_entries = cur.get_u64();
    let checksum = cur.get_u32();
    Ok(FileHeader {
        version,
        num_vertices,
        num_entries,
        checksum,
    })
}

/// Deserializes an index from `.chl` bytes produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<FlatIndex, PersistError> {
    let header = parse_header(data)?;
    let n64 = header.num_vertices;
    let m64 = header.num_entries;
    if n64 > VertexId::MAX as u64 {
        return Err(PersistError::Malformed(format!(
            "{n64} vertices exceeds the u32 vertex id space"
        )));
    }
    let payload_len = expected_payload_len(n64, m64).ok_or_else(|| {
        PersistError::Malformed(format!(
            "declared dimensions (n = {n64}, m = {m64}) overflow the addressable size"
        ))
    })?;
    let expected = HEADER_LEN + payload_len;
    if data.len() < expected {
        return Err(PersistError::Truncated {
            expected,
            found: data.len(),
        });
    }
    if data.len() > expected {
        return Err(PersistError::TrailingBytes {
            extra: data.len() - expected,
        });
    }

    let computed = crc32(&data[HEADER_LEN..]);
    if computed != header.checksum {
        return Err(PersistError::ChecksumMismatch {
            stored: header.checksum,
            computed,
        });
    }

    let n = n64 as usize;
    let m = m64 as usize;
    let mut cur = Cursor::new(&data[HEADER_LEN..]);

    let order: Vec<VertexId> = (0..n).map(|_| cur.get_u32()).collect();
    let ranking = Ranking::from_order(order, n)
        .map_err(|e| PersistError::Malformed(format!("ranking section: {e}")))?;

    let offsets: Vec<u64> = (0..=n).map(|_| cur.get_u64()).collect();
    if offsets[0] != 0 {
        return Err(PersistError::Malformed(format!(
            "offsets must start at 0, found {}",
            offsets[0]
        )));
    }
    if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
        return Err(PersistError::Malformed(format!(
            "offsets must be monotonically non-decreasing, found {} before {}",
            w[0], w[1]
        )));
    }
    if offsets[n] != m64 {
        return Err(PersistError::Malformed(format!(
            "final offset {} disagrees with the declared entry count {m64}",
            offsets[n]
        )));
    }

    let mut entries = Vec::with_capacity(m);
    for _ in 0..m {
        let hub = cur.get_u32();
        let dist = cur.get_u64();
        entries.push(LabelEntry::new(hub, dist));
    }
    for v in 0..n {
        let slice = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for e in slice {
            if e.hub as u64 >= n64 {
                return Err(PersistError::Malformed(format!(
                    "vertex {v} has a label with hub position {} outside 0..{n64}",
                    e.hub
                )));
            }
            if prev.is_some_and(|p| p >= e.hub) {
                return Err(PersistError::Malformed(format!(
                    "labels of vertex {v} are not strictly hub-sorted"
                )));
            }
            prev = Some(e.hub);
        }
    }

    Ok(FlatIndex::from_validated_parts(offsets, entries, ranking))
}

/// Writes `index` to `path` in the `.chl` format, overwriting any existing
/// file. The write is not atomic; writers that must never expose a torn file
/// should write to a sibling temp path and rename.
pub fn save<P: AsRef<Path>>(index: &FlatIndex, path: P) -> Result<(), PersistError> {
    fs::write(path, to_bytes(index))?;
    Ok(())
}

/// Reads an index from a `.chl` file written by [`save`].
pub fn load<P: AsRef<Path>>(path: P) -> Result<FlatIndex, PersistError> {
    let data = fs::read(path)?;
    from_bytes(&data)
}

/// Reads and validates just the header of a `.chl` file.
pub fn load_header<P: AsRef<Path>>(path: P) -> Result<FileHeader, PersistError> {
    use std::io::Read;
    let mut file = fs::File::open(path)?;
    let mut buf = [0u8; HEADER_LEN];
    let mut read = 0;
    while read < HEADER_LEN {
        match file.read(&mut buf[read..])? {
            0 => break,
            k => read += k,
        }
    }
    parse_header(&buf[..read])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HubLabelIndex;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        // Serialization is deterministic.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn header_describes_the_file() {
        let flat = tiny_flat();
        let bytes = to_bytes(&flat);
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.num_vertices, 3);
        assert_eq!(header.num_entries, 5);
        assert_eq!(header.expected_file_len(), Some(bytes.len()));
    }

    #[test]
    fn empty_and_zero_vertex_indexes_round_trip() {
        let empty = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(5)));
        assert_eq!(from_bytes(&to_bytes(&empty)).unwrap(), empty);
        let zero = FlatIndex::from_index(&HubLabelIndex::empty(Ranking::identity(0)));
        assert_eq!(from_bytes(&to_bytes(&zero)).unwrap(), zero);
    }

    #[test]
    fn corruption_is_detected_with_typed_errors() {
        let bytes = to_bytes(&tiny_flat());

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            from_bytes(&bad_magic),
            Err(PersistError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_bytes(&bad_version),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));

        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            from_bytes(truncated),
            Err(PersistError::Truncated { .. })
        ));

        assert!(matches!(
            from_bytes(&bytes[..10]),
            Err(PersistError::Truncated { .. })
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            from_bytes(&trailing),
            Err(PersistError::TrailingBytes { extra: 1 })
        ));

        // Flip one payload byte: caught by the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&flipped),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Flip a checksum byte itself: also a mismatch.
        let mut bad_crc = bytes.clone();
        bad_crc[24] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bad_crc),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn semantically_invalid_payloads_are_malformed() {
        // Hand-craft a file whose checksum is valid but whose ranking is not
        // a permutation (vertex 0 listed twice).
        let n = 2u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[0] = 0
        buf.extend_from_slice(&0u32.to_le_bytes()); // ranking[1] = 0 (dup)
        for _ in 0..3 {
            buf.extend_from_slice(&0u64.to_le_bytes()); // offsets
        }
        let crc = crc32(&buf[HEADER_LEN..]);
        buf[24..28].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(from_bytes(&buf), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn files_round_trip_on_disk() {
        let flat = tiny_flat();
        let path = std::env::temp_dir().join(format!(
            "chl-persist-test-{}-{:?}.chl",
            std::process::id(),
            std::thread::current().id()
        ));
        save(&flat, &path).unwrap();
        let header = load_header(&path).unwrap();
        assert_eq!(header.num_vertices, 3);
        let back = load(&path).unwrap();
        assert_eq!(back, flat);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = PersistError::BadMagic { found: *b"NOPE" };
        assert!(e.to_string().contains("magic"));
        let e = PersistError::UnsupportedVersion { found: 7 };
        assert!(e.to_string().contains('7'));
        let e = PersistError::Truncated {
            expected: 100,
            found: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = PersistError::TrailingBytes { extra: 3 };
        assert!(e.to_string().contains("trailing"));
        let e = PersistError::Malformed("oops".into());
        assert!(e.to_string().contains("oops"));
    }
}
