//! Label cleaning: detection and removal of redundant labels.
//!
//! The optimistic parallel construction phases (LCC-I, each GLL superstep)
//! may generate labels that are not part of the Canonical Hub Labeling.
//! Because the constructed labeling *respects the hierarchy* (guaranteed by
//! the rank queries), Lemma 2 of the paper shows every redundant label
//! `(h, d(v,h)) ∈ L_v` is exposed by a single PPSD-style query between `v`
//! and `h`: some more important common hub certifies a distance `<= d(v,h)`.
//!
//! Cleaning therefore never needs the graph — only the labeling itself.

use rayon::prelude::*;

use chl_graph::types::VertexId;
use chl_ranking::Ranking;

use crate::labels::{LabelEntry, LabelSet};

/// Removes every redundant label from `labels` (one sorted [`LabelSet`] per
/// vertex), returning the cleaned per-vertex sets and the number of labels
/// deleted.
///
/// The pass reads the *input* labeling for all queries and writes fresh
/// output sets, so it parallelizes over vertices without any locking and is
/// independent of the order in which redundancies are discovered (canonical
/// labels are never redundant, hence never deleted, hence every redundancy
/// witness used by a query survives the pass). It runs on the ambient rayon
/// pool; callers with a thread budget (the LCC/GLL constructors honoring
/// `LabelingConfig::num_threads`) wrap the call in `ThreadPool::install`.
pub fn clean_labels(labels: &[LabelSet], ranking: &Ranking) -> (Vec<LabelSet>, usize) {
    let cleaned: Vec<LabelSet> = labels
        .par_iter()
        .enumerate()
        .map(|(v, set)| {
            let v = v as VertexId;
            let kept: Vec<LabelEntry> = set
                .entries()
                .iter()
                .copied()
                .filter(|e| !is_redundant(v, *e, labels, ranking))
                .collect();
            LabelSet::from_entries(kept)
        })
        .collect();
    let before: usize = labels.iter().map(LabelSet::len).sum();
    let after: usize = cleaned.iter().map(LabelSet::len).sum();
    (cleaned, before - after)
}

/// The paper's `DQ_Clean`: is the label `entry` of vertex `v` redundant with
/// respect to the labeling `labels`?
pub fn is_redundant(
    v: VertexId,
    entry: LabelEntry,
    labels: &[LabelSet],
    ranking: &Ranking,
) -> bool {
    let hub_vertex = ranking.vertex_at(entry.hub);
    if hub_vertex == v {
        // A vertex's self label is never redundant.
        return false;
    }
    labels[v as usize].is_redundant_label(entry.hub, entry.dist, &labels[hub_vertex as usize])
}

/// Counts redundant labels without removing them (used by diagnostics and by
/// the DGLL superstep accounting, which needs the per-vertex verdicts).
pub fn count_redundant(labels: &[LabelSet], ranking: &Ranking) -> usize {
    labels
        .par_iter()
        .enumerate()
        .map(|(v, set)| {
            set.entries()
                .iter()
                .filter(|e| is_redundant(v as VertexId, **e, labels, ranking))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HubLabelIndex;
    use crate::para_pll::spara_pll;
    use crate::pll::sequential_pll;
    use crate::LabelingConfig;
    use chl_graph::generators::{barabasi_albert, erdos_renyi};
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    #[test]
    fn canonical_labeling_is_left_untouched() {
        let g = erdos_renyi(50, 0.1, 10, 4);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let sets: Vec<LabelSet> = canonical.clone().into_label_sets();
        let (cleaned, removed) = clean_labels(&sets, &ranking);
        assert_eq!(removed, 0);
        assert_eq!(cleaned, sets);
    }

    #[test]
    fn redundant_labels_from_rankless_construction_are_removed() {
        // paraPLL with many threads produces redundant labels on scale-free
        // graphs; cleaning a labeling that respects R would give the CHL, but
        // paraPLL does NOT respect R, so here we only verify that cleaning
        // never breaks query correctness and never grows the labeling.
        let g = barabasi_albert(120, 3, 8);
        let ranking = degree_ranking(&g);
        let loose = spara_pll(&g, &ranking, &LabelingConfig::default().with_threads(8)).index;
        let sets = loose.clone().into_label_sets();
        let before: usize = sets.iter().map(LabelSet::len).sum();
        let (cleaned, removed) = clean_labels(&sets, &ranking);
        let after: usize = cleaned.iter().map(LabelSet::len).sum();
        assert_eq!(before - after, removed);
        assert!(after <= before);
    }

    #[test]
    fn hand_built_redundant_label_is_detected() {
        // Path 0-1-2, ranking 1 > 0 > 2. The label (0, d=1) at vertex 2 ...
        // does not exist in the CHL; build it by hand and ensure DQ_Clean
        // flags it: 1 is a more important common hub of 2 and 0 with
        // d(2,1)+d(0,1) = 2 <= 2.
        let ranking = chl_ranking::Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        let idx = HubLabelIndex::from_triples(
            vec![
                (0, 1, 1),
                (0, 0, 0),
                (1, 1, 0),
                (2, 1, 1),
                (2, 2, 0),
                (2, 0, 2), // redundant: covered through hub 1
            ],
            ranking.clone(),
        );
        let sets = idx.into_label_sets();
        let redundant_entry = LabelEntry::new(ranking.position(0), 2);
        assert!(is_redundant(2, redundant_entry, &sets, &ranking));
        assert_eq!(count_redundant(&sets, &ranking), 1);
        let (cleaned, removed) = clean_labels(&sets, &ranking);
        assert_eq!(removed, 1);
        assert!(!cleaned[2].contains_hub(ranking.position(0)));
        // Queries remain exact after cleaning.
        let cleaned_idx = HubLabelIndex::new(cleaned, ranking).unwrap();
        assert_eq!(cleaned_idx.query(0, 2), 2);
    }

    #[test]
    fn cleaning_preserves_query_answers() {
        let g = erdos_renyi(70, 0.07, 12, 30);
        let ranking = degree_ranking(&g);
        // Build an inflated labeling by disabling distance pruning.
        let inflated = crate::pll::pll_with_restricted_pruning(&g, &ranking, 0).index;
        let sets = inflated.into_label_sets();
        let (cleaned, _) = clean_labels(&sets, &ranking);
        let idx = HubLabelIndex::new(cleaned, ranking).unwrap();
        for src in [0u32, 33, 69] {
            let d = dijkstra(&g, src);
            for v in 0..70u32 {
                assert_eq!(idx.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn self_labels_are_never_removed() {
        let ranking = chl_ranking::Ranking::identity(2);
        let idx =
            HubLabelIndex::from_triples(vec![(0, 0, 0), (1, 1, 0), (1, 0, 5)], ranking.clone());
        let sets = idx.into_label_sets();
        let (cleaned, removed) = clean_labels(&sets, &ranking);
        assert_eq!(removed, 0);
        assert!(cleaned[1].contains_hub(1));
    }
}
