//! The unified construction API: one algorithm-agnostic entry point over all
//! six CHL constructors.
//!
//! The paper's central observation is that PLL, LCC, GLL, PLaNT and the
//! Hybrid all produce the *same* canonical hub labeling (and SparaPLL a
//! query-equivalent superset), so callers should never be coupled to a
//! specific constructor. This module provides that seam:
//!
//! * [`Algorithm`] — a value-level name for each constructor;
//! * [`Labeler`] — the object-safe construction trait, one implementation
//!   per constructor, with input validation routed through
//!   [`LabelingError`] instead of panics;
//! * [`RankingStrategy`] — how the builder obtains the network hierarchy;
//! * [`ChlBuilder`] — the fluent front door:
//!
//! ```
//! use chl_graph::generators::{grid_network, GridOptions};
//! use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
//!
//! let g = grid_network(&GridOptions { rows: 6, cols: 6, ..GridOptions::default() }, 7);
//! let result = ChlBuilder::new(&g)
//!     .ranking(RankingStrategy::Degree)
//!     .algorithm(Algorithm::Hybrid)
//!     .threads(2)
//!     .validate()
//!     .expect("valid configuration")
//!     .build()
//!     .expect("construction succeeds");
//! assert!(result.index.total_labels() > 0);
//! ```

use std::fmt;
use std::str::FromStr;

use chl_graph::CsrGraph;
use chl_ranking::{
    betweenness_ranking, default_ranking, degree_ranking, BetweennessOptions, Ranking,
};

use crate::config::LabelingConfig;
use crate::error::LabelingError;
use crate::index::LabelingResult;

/// The six labeling constructors of the paper, as values.
///
/// | Variant | Constructor | Paper section | Canonical output? |
/// |---|---|---|---|
/// | `Pll` | sequential PLL (Akiba et al.) | §1 baseline | yes |
/// | `SParaPll` | shared-memory paraPLL (Qiu et al.) | §3 baseline | no (query-equivalent superset) |
/// | `Lcc` | Label Construction and Cleaning | §4.1, Alg. 2 | yes |
/// | `Gll` | Global-Local Labeling | §4.2 | yes |
/// | `Plant` | PLaNT (prune labels, not trees) | §5.2, Alg. 3 | yes |
/// | `Hybrid` | PLaNT prefix + GLL tail | §5.2.1 | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential Pruned Landmark Labeling, the reference constructor.
    Pll,
    /// Shared-memory paraPLL: parallel, no rank queries, non-canonical.
    SParaPll,
    /// Optimistic parallel construction plus a full cleaning pass.
    Lcc,
    /// Superstep-synchronized global/local tables, cheaper cleaning.
    Gll,
    /// Prune-free tree growth with local label emission decisions.
    Plant,
    /// PLaNT for the label-heavy prefix, GLL for the tail.
    Hybrid,
}

impl Algorithm {
    /// Every algorithm, in the paper's presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Pll,
        Algorithm::SParaPll,
        Algorithm::Lcc,
        Algorithm::Gll,
        Algorithm::Plant,
        Algorithm::Hybrid,
    ];

    /// The algorithms guaranteed to produce the canonical labeling.
    pub const CANONICAL: [Algorithm; 5] = [
        Algorithm::Pll,
        Algorithm::Lcc,
        Algorithm::Gll,
        Algorithm::Plant,
        Algorithm::Hybrid,
    ];

    /// Short display name, matching the paper's typography.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Pll => "seqPLL",
            Algorithm::SParaPll => "SparaPLL",
            Algorithm::Lcc => "LCC",
            Algorithm::Gll => "GLL",
            Algorithm::Plant => "PLaNT",
            Algorithm::Hybrid => "Hybrid",
        }
    }

    /// The paper section introducing the algorithm.
    ///
    /// ```
    /// use chl_core::api::Algorithm;
    ///
    /// assert_eq!(Algorithm::Plant.paper_section(), "§5.2, Algorithm 3");
    /// // Names parse back case-insensitively, so CLI flags and config files
    /// // can round-trip through `to_string`.
    /// assert_eq!("plant".parse::<Algorithm>().unwrap(), Algorithm::Plant);
    /// assert_eq!(Algorithm::Plant.to_string(), "PLaNT");
    /// ```
    pub fn paper_section(self) -> &'static str {
        match self {
            Algorithm::Pll => "§1 (baseline, Akiba et al. 2013)",
            Algorithm::SParaPll => "§3 (baseline, Qiu et al. 2018)",
            Algorithm::Lcc => "§4.1, Algorithm 2",
            Algorithm::Gll => "§4.2",
            Algorithm::Plant => "§5.2, Algorithm 3",
            Algorithm::Hybrid => "§5.2.1",
        }
    }

    /// `true` when the constructor outputs the canonical hub labeling;
    /// `SParaPll` instead outputs a query-equivalent superset.
    pub fn is_canonical(self) -> bool {
        !matches!(self, Algorithm::SParaPll)
    }

    /// `true` for multi-threaded constructors.
    pub fn is_parallel(self) -> bool {
        !matches!(self, Algorithm::Pll)
    }

    /// The [`Labeler`] implementing this algorithm.
    pub fn labeler(self) -> &'static dyn Labeler {
        match self {
            Algorithm::Pll => &PllLabeler,
            Algorithm::SParaPll => &SParaPllLabeler,
            Algorithm::Lcc => &LccLabeler,
            Algorithm::Gll => &GllLabeler,
            Algorithm::Plant => &PlantLabeler,
            Algorithm::Hybrid => &HybridLabeler,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = LabelingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pll" | "seqpll" => Ok(Algorithm::Pll),
            "sparapll" | "parapll" | "para-pll" => Ok(Algorithm::SParaPll),
            "lcc" => Ok(Algorithm::Lcc),
            "gll" => Ok(Algorithm::Gll),
            "plant" => Ok(Algorithm::Plant),
            "hybrid" => Ok(Algorithm::Hybrid),
            other => Err(LabelingError::InvalidConfig(format!(
                "unknown algorithm '{other}' (expected one of pll, sparapll, lcc, gll, plant, hybrid)"
            ))),
        }
    }
}

/// How [`ChlBuilder`] obtains the network hierarchy.
///
/// This is the *value-level* companion of the `chl_ranking::RankingStrategy`
/// trait: an enum so it can be stored, compared and parsed, covering the
/// hierarchies the paper evaluates plus explicit user-supplied orders.
#[derive(Debug, Clone)]
pub enum RankingStrategy {
    /// Degree ordering — the paper's choice for scale-free networks (§7.1.1).
    Degree,
    /// Approximate betweenness — the paper's choice for road networks.
    Betweenness {
        /// Seed for the sampled shortest-path trees.
        seed: u64,
    },
    /// Pick degree or betweenness from the graph's topology, like
    /// `chl_ranking::default_ranking`.
    Auto {
        /// Seed forwarded to the betweenness sampler when it is chosen.
        seed: u64,
    },
    /// A caller-supplied hierarchy (e.g. imported highway hierarchies).
    Explicit(Ranking),
}

impl RankingStrategy {
    /// Resolves the strategy into a concrete [`Ranking`] for `g`.
    pub fn resolve(&self, g: &CsrGraph) -> Ranking {
        match self {
            RankingStrategy::Degree => degree_ranking(g),
            RankingStrategy::Betweenness { seed } => {
                betweenness_ranking(g, &BetweennessOptions::default(), *seed)
            }
            RankingStrategy::Auto { seed } => default_ranking(g, *seed),
            RankingStrategy::Explicit(r) => r.clone(),
        }
    }
}

impl Default for RankingStrategy {
    fn default() -> Self {
        RankingStrategy::Auto { seed: 42 }
    }
}

/// Checks the (graph, ranking, config) triple every constructor requires.
fn validate_inputs(
    g: &CsrGraph,
    ranking: &Ranking,
    config: &LabelingConfig,
) -> Result<(), LabelingError> {
    config.validate()?;
    if !ranking.matches_graph(g) {
        return Err(LabelingError::RankingMismatch {
            graph_vertices: g.num_vertices(),
            ranking_vertices: ranking.len(),
        });
    }
    Ok(())
}

/// An object-safe CHL constructor.
///
/// One implementation exists per [`Algorithm`]; all of them validate their
/// inputs (returning [`LabelingError`] instead of panicking or silently
/// corrupting state) and produce a [`LabelingResult`] whose index answers
/// exact PPSD queries through
/// [`DistanceOracle`](crate::oracle::DistanceOracle).
pub trait Labeler: Sync {
    /// Which algorithm this labeler runs.
    fn algorithm(&self) -> Algorithm;

    /// Short display name.
    fn name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// Builds the hub labeling of `g` under `ranking`.
    fn build(
        &self,
        g: &CsrGraph,
        ranking: &Ranking,
        config: &LabelingConfig,
    ) -> Result<LabelingResult, LabelingError>;
}

macro_rules! declare_labeler {
    ($(#[$doc:meta])* $struct_name:ident, $variant:ident, |$g:ident, $r:ident, $c:ident| $call:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $struct_name;

        impl Labeler for $struct_name {
            fn algorithm(&self) -> Algorithm {
                Algorithm::$variant
            }

            fn build(
                &self,
                $g: &CsrGraph,
                $r: &Ranking,
                $c: &LabelingConfig,
            ) -> Result<LabelingResult, LabelingError> {
                validate_inputs($g, $r, $c)?;
                Ok($call)
            }
        }
    };
}

declare_labeler!(
    /// [`Labeler`] running sequential PLL (ignores the thread count).
    PllLabeler,
    Pll,
    |g, r, _c| crate::pll::sequential_pll_impl(g, r)
);

declare_labeler!(
    /// [`Labeler`] running shared-memory paraPLL (non-canonical output).
    SParaPllLabeler,
    SParaPll,
    |g, r, c| crate::para_pll::spara_pll_impl(g, r, c)
);

declare_labeler!(
    /// [`Labeler`] running LCC (construction + full cleaning).
    LccLabeler,
    Lcc,
    |g, r, c| crate::lcc::lcc_impl(g, r, c)
);

declare_labeler!(
    /// [`Labeler`] running GLL (superstep global/local tables).
    GllLabeler,
    Gll,
    |g, r, c| crate::gll::gll_impl(g, r, c)
);

declare_labeler!(
    /// [`Labeler`] running PLaNT (no pruning queries, local emission).
    PlantLabeler,
    Plant,
    |g, r, c| crate::plant::plant_labeling_impl(g, r, c)
);

declare_labeler!(
    /// [`Labeler`] running the shared-memory Hybrid (PLaNT prefix + GLL tail).
    HybridLabeler,
    Hybrid,
    |g, r, c| crate::hybrid::shared_hybrid_impl(g, r, c)
);

/// Fluent, validating front door to every constructor.
///
/// Holds a borrowed graph plus the choices that define a construction run:
/// the hierarchy ([`RankingStrategy`]), the [`Algorithm`] and the tuning
/// knobs of [`LabelingConfig`]. `build` resolves the ranking, validates
/// everything and dispatches through [`Labeler`].
#[derive(Debug, Clone)]
pub struct ChlBuilder<'g> {
    graph: &'g CsrGraph,
    ranking: RankingStrategy,
    algorithm: Algorithm,
    config: LabelingConfig,
}

impl<'g> ChlBuilder<'g> {
    /// Starts a builder for `graph` with the paper's defaults: automatic
    /// hierarchy selection and the Hybrid constructor.
    pub fn new(graph: &'g CsrGraph) -> Self {
        ChlBuilder {
            graph,
            ranking: RankingStrategy::default(),
            algorithm: Algorithm::Hybrid,
            config: LabelingConfig::default(),
        }
    }

    /// Selects the hierarchy strategy.
    pub fn ranking(mut self, strategy: RankingStrategy) -> Self {
        self.ranking = strategy;
        self
    }

    /// Selects the constructor.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the whole tuning configuration.
    pub fn config(mut self, config: LabelingConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker thread count (`0` = all available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.num_threads = threads;
        self
    }

    /// Sets GLL's synchronization threshold `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the Hybrid switching threshold `Ψ_th`.
    pub fn psi_threshold(mut self, psi: f64) -> Self {
        self.config.psi_threshold = psi;
        self
    }

    /// Sets the Common Label Table size `η`.
    pub fn common_hubs(mut self, eta: usize) -> Self {
        self.config.common_hubs = eta;
        self
    }

    /// The algorithm currently selected.
    pub fn selected_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The tuning configuration currently assembled.
    pub fn current_config(&self) -> &LabelingConfig {
        &self.config
    }

    /// Checks the assembled configuration without running construction,
    /// passing the builder through on success so it chains into
    /// [`Self::build`].
    pub fn validate(self) -> Result<Self, LabelingError> {
        self.config.validate()?;
        if let RankingStrategy::Explicit(r) = &self.ranking {
            if !r.matches_graph(self.graph) {
                return Err(LabelingError::RankingMismatch {
                    graph_vertices: self.graph.num_vertices(),
                    ranking_vertices: r.len(),
                });
            }
        }
        Ok(self)
    }

    /// Resolves the ranking and runs the selected constructor.
    pub fn build(&self) -> Result<LabelingResult, LabelingError> {
        // Reject bad configurations before resolving the ranking: computing
        // an approximate-betweenness hierarchy can cost minutes on large
        // graphs, and an invalid config should fail for free.
        self.config.validate()?;
        let ranking = self.ranking.resolve(self.graph);
        self.algorithm
            .labeler()
            .build(self.graph, &ranking, &self.config)
    }

    /// Like [`Self::build`], but flattens the result into the contiguous
    /// serving layout — the build → persist pipeline of `chl build` as one
    /// call: follow with [`FlatIndex::save`](crate::flat::FlatIndex::save)
    /// or [`save_with`](crate::flat::FlatIndex::save_with) (e.g.
    /// `SaveOptions::compressed()` for the delta+varint entries section).
    pub fn build_flat(&self) -> Result<crate::flat::FlatIndex, LabelingError> {
        Ok(crate::flat::FlatIndex::from_index(&self.build()?.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::{grid_network, GridOptions};

    fn small_grid() -> CsrGraph {
        grid_network(
            &GridOptions {
                rows: 5,
                cols: 5,
                ..GridOptions::default()
            },
            3,
        )
    }

    #[test]
    fn every_algorithm_builds_through_the_trait() {
        let g = small_grid();
        let ranking = degree_ranking(&g);
        let config = LabelingConfig::default().with_threads(2);
        let reference = Algorithm::Pll
            .labeler()
            .build(&g, &ranking, &config)
            .unwrap();
        for algo in Algorithm::ALL {
            let result = algo.labeler().build(&g, &ranking, &config).unwrap();
            assert_eq!(result.index.num_vertices(), g.num_vertices());
            if algo.is_canonical() {
                assert_eq!(result.index, reference.index, "{algo} must equal seqPLL");
            }
        }
    }

    #[test]
    fn builder_chains_and_validates() {
        let g = small_grid();
        let result = ChlBuilder::new(&g)
            .ranking(RankingStrategy::Degree)
            .algorithm(Algorithm::Gll)
            .threads(2)
            .alpha(2.0)
            .validate()
            .expect("config is valid")
            .build()
            .expect("construction succeeds");
        assert!(result.index.total_labels() > 0);
    }

    #[test]
    fn builder_rejects_bad_config() {
        let g = small_grid();
        let err = ChlBuilder::new(&g).alpha(0.2).validate().unwrap_err();
        assert!(matches!(err, LabelingError::InvalidConfig(_)));
        // build() re-validates even when validate() was skipped.
        let err = ChlBuilder::new(&g).psi_threshold(-1.0).build().unwrap_err();
        assert!(matches!(err, LabelingError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_mismatched_explicit_ranking() {
        let g = small_grid();
        let wrong = Ranking::identity(3);
        let err = ChlBuilder::new(&g)
            .ranking(RankingStrategy::Explicit(wrong))
            .validate()
            .unwrap_err();
        assert!(matches!(err, LabelingError::RankingMismatch { .. }));
    }

    #[test]
    fn labeler_rejects_mismatched_ranking() {
        let g = small_grid();
        let wrong = Ranking::identity(2);
        for algo in Algorithm::ALL {
            let err = algo
                .labeler()
                .build(&g, &wrong, &LabelingConfig::default())
                .unwrap_err();
            assert!(
                matches!(err, LabelingError::RankingMismatch { .. }),
                "{algo}"
            );
        }
    }

    #[test]
    fn algorithm_metadata_is_consistent() {
        assert_eq!(Algorithm::ALL.len(), 6);
        assert_eq!(Algorithm::CANONICAL.len(), 5);
        for algo in Algorithm::ALL {
            assert_eq!(algo.labeler().algorithm(), algo);
            assert_eq!(algo.labeler().name(), algo.name());
            assert!(!algo.paper_section().is_empty());
            assert_eq!(algo.is_canonical(), Algorithm::CANONICAL.contains(&algo));
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
        }
        assert!("nonsense".parse::<Algorithm>().is_err());
    }

    #[test]
    fn ranking_strategies_resolve() {
        let g = small_grid();
        let n = g.num_vertices();
        assert_eq!(RankingStrategy::Degree.resolve(&g).len(), n);
        assert_eq!(
            RankingStrategy::Betweenness { seed: 1 }.resolve(&g).len(),
            n
        );
        assert_eq!(RankingStrategy::Auto { seed: 1 }.resolve(&g).len(), n);
        let explicit = Ranking::identity(n);
        assert_eq!(
            RankingStrategy::Explicit(explicit.clone()).resolve(&g),
            explicit
        );
    }
}
