//! Concurrent label tables.
//!
//! The parallel constructors have worker threads appending labels to
//! arbitrary vertices while other threads read those same label sets to
//! answer pruning queries. Following the paper's design:
//!
//! * a **local** table ([`ConcurrentLabelTable`]) takes all appends and is
//!   protected by one small mutex per vertex;
//! * a **global** table (a plain `Vec<LabelSet>`) holds labels committed at
//!   the previous synchronization point, is immutable during a superstep and
//!   therefore read without any locking — this is GLL's main trick for
//!   cutting lock traffic (§4.2).
//!
//! The [`LabelAccess`] trait abstracts over "where do I read labels from /
//! append labels to" so the pruned-Dijkstra kernel can serve PLL, paraPLL,
//! LCC and GLL unchanged.

use parking_lot::Mutex;

use chl_graph::types::VertexId;

use crate::labels::{LabelEntry, LabelSet};

/// How a construction kernel reads and writes labels.
pub trait LabelAccess: Sync {
    /// Appends the current labels of `v` to `out` (order unspecified).
    fn collect_labels(&self, v: VertexId, out: &mut Vec<LabelEntry>);
    /// Records a freshly generated label for `v`.
    fn append(&self, v: VertexId, entry: LabelEntry);
}

/// A per-vertex label table safe for concurrent appends and reads.
#[derive(Debug)]
pub struct ConcurrentLabelTable {
    slots: Vec<Mutex<Vec<LabelEntry>>>,
}

impl ConcurrentLabelTable {
    /// Creates a table for `n` vertices.
    pub fn new(n: usize) -> Self {
        ConcurrentLabelTable {
            slots: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.slots.len()
    }

    /// Appends a label to `v`.
    pub fn append(&self, v: VertexId, entry: LabelEntry) {
        self.slots[v as usize].lock().push(entry);
    }

    /// Copies the labels of `v` into `out`.
    pub fn collect_into(&self, v: VertexId, out: &mut Vec<LabelEntry>) {
        out.extend_from_slice(&self.slots[v as usize].lock());
    }

    /// Returns a snapshot of the labels of `v`.
    pub fn snapshot(&self, v: VertexId) -> Vec<LabelEntry> {
        self.slots[v as usize].lock().clone()
    }

    /// Number of labels currently stored for `v`.
    pub fn len_of(&self, v: VertexId) -> usize {
        self.slots[v as usize].lock().len()
    }

    /// Total number of labels across all vertices.
    pub fn total_labels(&self) -> usize {
        self.slots.iter().map(|s| s.lock().len()).sum()
    }

    /// Drains the table into per-vertex raw entry vectors, leaving it empty.
    pub fn drain_all(&self) -> Vec<Vec<LabelEntry>> {
        self.slots
            .iter()
            .map(|s| std::mem::take(&mut *s.lock()))
            .collect()
    }

    /// Consumes the table into sorted per-vertex [`LabelSet`]s.
    pub fn into_label_sets(self) -> Vec<LabelSet> {
        self.slots
            .into_iter()
            .map(|s| LabelSet::from_entries(s.into_inner()))
            .collect()
    }
}

impl LabelAccess for ConcurrentLabelTable {
    fn collect_labels(&self, v: VertexId, out: &mut Vec<LabelEntry>) {
        self.collect_into(v, out);
    }
    fn append(&self, v: VertexId, entry: LabelEntry) {
        ConcurrentLabelTable::append(self, v, entry);
    }
}

/// The global + local table pair used by GLL: reads see the union of the
/// committed global labels (lock-free) and the in-flight local labels
/// (per-vertex mutex); writes go to the local table only.
pub struct GllTables<'a> {
    /// Labels committed at earlier synchronization points.
    pub global: &'a [LabelSet],
    /// Labels generated during the current superstep.
    pub local: &'a ConcurrentLabelTable,
}

impl LabelAccess for GllTables<'_> {
    fn collect_labels(&self, v: VertexId, out: &mut Vec<LabelEntry>) {
        out.extend_from_slice(self.global[v as usize].entries());
        self.local.collect_into(v, out);
    }
    fn append(&self, v: VertexId, entry: LabelEntry) {
        self.local.append(v, entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_and_snapshot() {
        let t = ConcurrentLabelTable::new(3);
        t.append(0, LabelEntry::new(1, 5));
        t.append(0, LabelEntry::new(0, 2));
        t.append(2, LabelEntry::new(0, 7));
        assert_eq!(t.len_of(0), 2);
        assert_eq!(t.len_of(1), 0);
        assert_eq!(t.total_labels(), 3);
        let snap = t.snapshot(0);
        assert_eq!(snap.len(), 2);
        let sets = t.into_label_sets();
        assert_eq!(sets[0].entries()[0].hub, 0);
        assert_eq!(sets[2].len(), 1);
    }

    #[test]
    fn drain_leaves_table_empty() {
        let t = ConcurrentLabelTable::new(2);
        t.append(1, LabelEntry::new(3, 3));
        let drained = t.drain_all();
        assert_eq!(drained[1].len(), 1);
        assert_eq!(t.total_labels(), 0);
    }

    #[test]
    fn concurrent_appends_from_many_threads() {
        let t = Arc::new(ConcurrentLabelTable::new(8));
        std::thread::scope(|scope| {
            for thread_id in 0..4u32 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..100u32 {
                        t.append(
                            (i % 8) as VertexId,
                            LabelEntry::new(thread_id * 1000 + i, i as u64),
                        );
                    }
                });
            }
        });
        assert_eq!(t.total_labels(), 400);
    }

    #[test]
    fn gll_tables_read_union_write_local() {
        let global = vec![
            LabelSet::from_entries(vec![LabelEntry::new(0, 1)]),
            LabelSet::new(),
        ];
        let local = ConcurrentLabelTable::new(2);
        local.append(0, LabelEntry::new(5, 9));
        let tables = GllTables {
            global: &global,
            local: &local,
        };

        let mut out = Vec::new();
        tables.collect_labels(0, &mut out);
        assert_eq!(out.len(), 2);

        tables.append(1, LabelEntry::new(2, 2));
        assert_eq!(local.len_of(1), 1);
        assert!(global[1].is_empty());
    }
}
