//! Error type for labeling construction.

use std::fmt;

/// Errors produced by the labeling constructors.
#[derive(Debug)]
pub enum LabelingError {
    /// The supplied ranking does not cover exactly the graph's vertices.
    RankingMismatch {
        /// Vertices in the graph.
        graph_vertices: usize,
        /// Vertices covered by the ranking.
        ranking_vertices: usize,
    },
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
}

impl fmt::Display for LabelingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelingError::RankingMismatch { graph_vertices, ranking_vertices } => write!(
                f,
                "ranking covers {ranking_vertices} vertices but the graph has {graph_vertices}"
            ),
            LabelingError::InvalidConfig(msg) => write!(f, "invalid labeling configuration: {msg}"),
        }
    }
}

impl std::error::Error for LabelingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LabelingError::RankingMismatch { graph_vertices: 10, ranking_vertices: 9 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("9"));
        let e = LabelingError::InvalidConfig("alpha must be >= 1".into());
        assert!(e.to_string().contains("alpha"));
    }
}
