//! Error type for labeling construction.

use std::fmt;

/// Errors produced by the labeling constructors.
#[derive(Debug)]
pub enum LabelingError {
    /// The supplied ranking does not cover exactly the graph's vertices.
    RankingMismatch {
        /// Vertices in the graph.
        graph_vertices: usize,
        /// Vertices covered by the ranking.
        ranking_vertices: usize,
    },
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// An index was assembled from label sets whose count differs from the
    /// ranking's vertex count.
    LabelShapeMismatch {
        /// Number of per-vertex label sets supplied.
        label_sets: usize,
        /// Vertices covered by the ranking.
        ranking_vertices: usize,
    },
    /// Two indexes built over different rankings were merged; their labels
    /// refer to different hub positions, so a union would silently corrupt
    /// query answers.
    MergeRankingMismatch {
        /// Vertices covered by the left (destination) index.
        left_vertices: usize,
        /// Vertices covered by the right (source) index.
        right_vertices: usize,
    },
}

impl fmt::Display for LabelingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelingError::RankingMismatch { graph_vertices, ranking_vertices } => write!(
                f,
                "ranking covers {ranking_vertices} vertices but the graph has {graph_vertices}"
            ),
            LabelingError::InvalidConfig(msg) => write!(f, "invalid labeling configuration: {msg}"),
            LabelingError::LabelShapeMismatch { label_sets, ranking_vertices } => write!(
                f,
                "index assembled from {label_sets} label sets but the ranking covers {ranking_vertices} vertices"
            ),
            LabelingError::MergeRankingMismatch { left_vertices, right_vertices } => write!(
                f,
                "cannot merge hub-label indexes built over different rankings \
                 ({left_vertices} vs {right_vertices} vertices, or same size with different order)"
            ),
        }
    }
}

impl std::error::Error for LabelingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LabelingError::RankingMismatch {
            graph_vertices: 10,
            ranking_vertices: 9,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("9"));
        let e = LabelingError::InvalidConfig("alpha must be >= 1".into());
        assert!(e.to_string().contains("alpha"));
        let e = LabelingError::LabelShapeMismatch {
            label_sets: 4,
            ranking_vertices: 5,
        };
        assert!(e.to_string().contains("4") && e.to_string().contains("5"));
        let e = LabelingError::MergeRankingMismatch {
            left_vertices: 2,
            right_vertices: 3,
        };
        assert!(e.to_string().contains("different rankings"));
    }
}
