//! Tiered PPSD merge-join kernels and the hot-hub distance cache.
//!
//! Every distance query in the workspace reduces to one operation: given the
//! hub-sorted label runs of `u` and `v`, find the minimum
//! `d(u,h) + d(v,h)` over common hubs `h` (and the first hub achieving it).
//! The reference implementation is the branchy two-pointer iterator join in
//! [`crate::labels::join_sorted_iters`]; this module supplies drop-in
//! replacements over plain `&[LabelEntry]` slices that trade generality for
//! throughput, plus the dispatch that picks between them:
//!
//! * [`join_branchless`] — two-pointer scan with conditional-move advance
//!   and a branchless best-accumulator: no per-step `Option` matching, no
//!   data-dependent branches in the loop body.
//! * [`join_scalar`] — the seed's branchy two-pointer loop over slices;
//!   still the fastest tier for medium similar-length runs, where branch
//!   speculation overlaps the label-run cache misses.
//! * [`join_gallop`] — exponential search of the longer run for each entry
//!   of the shorter one; selected when the runs' lengths differ by
//!   [`GALLOP_FACTOR`] or more (hub vertices carry runs orders of magnitude
//!   longer than leaf vertices).
//! * [`join_simd`] — `std::arch` block compare of hub ids (SSE2/AVX2 on
//!   x86_64, NEON on aarch64; AVX2 behind a memoized runtime probe, the
//!   rest statically guaranteed by the target), with the distance
//!   min-reduction kept in the shared scalar accumulator so tie-breaking
//!   stays bit-identical to the reference join.
//! * [`join_adaptive`] — the tier selector [`crate::flat::LabelView`] calls
//!   for every decoded (slice-backed) storage; streaming compressed runs
//!   keep the iterator kernel.
//!
//! All tiers return **exactly** what the reference join returns — same
//! `Option`, same hub on ties (the first, i.e. highest-ranked, hub achieving
//! the minimal sum), same `Distance::MAX` saturation — a property pinned
//! down by the differential proptests in `tests/proptest_kernels.rs`.
//!
//! [`HotHubCache`] is the query-side complement: hub labelings concentrate
//! query hits on the few best-ranked hubs, so a read-mostly cache of the
//! top-`k` hubs' full distance rows answers the head of the join with two
//! array loads per hub and leaves only the tail (`hub >= k`) to the merge
//! join. [`HotHubCached`] wraps any slice-viewable oracle with one.

use chl_graph::types::{Distance, VertexId, INFINITY};

use crate::flat::{FlatIndex, IndexView, LabelStorage, LabelView, StorageView};
use crate::labels::LabelEntry;
use crate::mapped::MmapIndex;
use crate::oracle::DistanceOracle;

/// Length ratio at which [`join_adaptive`] switches from block scanning to
/// galloping: the longer run must be at least this many times the shorter.
///
/// Label-run length distributions are heavily skewed (see
/// `chl inspect --histogram` percentiles): the top-ranked hub's run covers
/// most of the graph while leaf runs hold a handful of entries, so skewed
/// pairs are common and galloping turns them from O(long) into
/// O(short · log long).
pub const GALLOP_FACTOR: usize = 16;

/// Minimum longer-run length for the SIMD tier; below this the scalar
/// branchless loop wins (vector setup cost dominates 1–2 block iterations).
const SIMD_MIN: usize = 16;

/// The running best of a merge join: first (highest-ranked) hub achieving
/// the strictly minimal `d(u,h) + d(v,h)` seen so far.
///
/// `found` is tracked separately from the distance because `Distance::MAX`
/// is a legitimate saturated sum — the reference join can return
/// `Some((h, MAX))` — so `MAX` cannot double as the "nothing yet" sentinel.
#[derive(Clone, Copy)]
struct Best {
    found: bool,
    hub: u32,
    dist: Distance,
}

impl Best {
    #[inline(always)]
    fn new() -> Best {
        Best {
            found: false,
            hub: 0,
            dist: INFINITY,
        }
    }

    /// Folds one common-hub hit in, branchlessly, with the reference join's
    /// exact tie-break: a later hub replaces the best only on a strictly
    /// smaller sum.
    #[inline(always)]
    fn update(&mut self, hub: u32, total: Distance) {
        let take = !self.found | (total < self.dist);
        self.hub = if take { hub } else { self.hub };
        self.dist = if take { total } else { self.dist };
        self.found = true;
    }

    #[inline(always)]
    fn into_option(self) -> Option<(u32, Distance)> {
        if self.found {
            Some((self.hub, self.dist))
        } else {
            None
        }
    }
}

/// The branchless two-pointer core, continuing from an already-accumulated
/// [`Best`] — shared by [`join_branchless`] and every SIMD tail.
#[inline(always)]
fn join_branchless_into(a: &[LabelEntry], b: &[LabelEntry], best: &mut Best) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        // SAFETY: `i < a.len()` holds by the loop condition just checked.
        let x = unsafe { *a.get_unchecked(i) };
        // SAFETY: `j < b.len()` holds by the loop condition just checked.
        let y = unsafe { *b.get_unchecked(j) };
        let total = x.dist.saturating_add(y.dist);
        let eq = x.hub == y.hub;
        let take = eq & (!best.found | (total < best.dist));
        best.hub = if take { x.hub } else { best.hub };
        best.dist = if take { total } else { best.dist };
        best.found |= eq;
        // <= / >= advance both pointers on a hub match and exactly one
        // otherwise — the whole step compiles to conditional moves.
        i += usize::from(x.hub <= y.hub);
        j += usize::from(y.hub <= x.hub);
    }
}

/// Branchless two-pointer merge join over hub-sorted slices. Equivalent to
/// [`crate::labels::join_sorted_slices`] on every input (both runs sorted
/// strictly ascending by hub).
pub fn join_branchless(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    let mut best = Best::new();
    join_branchless_into(a, b, &mut best);
    best.into_option()
}

/// Branchy two-pointer merge join over slices — the seed algorithm, kept as
/// its own tier. On medium, similar-length runs this stays the fastest
/// variant under a memory-bound serving profile: the branches let the CPU
/// speculate several iterations ahead and overlap the label-run cache
/// misses, which the data-dependent conditional-move advance of
/// [`join_branchless`] serializes into a latency chain (measured in
/// `crates/bench/examples/hot_hub_tuning.rs`).
#[inline]
pub fn join_scalar(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    crate::labels::join_sorted_iters(a.iter().copied(), b.iter().copied())
}

/// Galloping (exponential-search) merge join for length-skewed runs: each
/// entry of the shorter run probes the longer one with a doubling search
/// followed by a binary search of the bracketed window, so the cost is
/// `O(short · log long)` instead of `O(short + long)`.
pub fn join_gallop(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    // Swapping the sides never changes the answer: the common-hub set and
    // the per-hub sums are symmetric, and matches are still visited in
    // ascending hub order, so the tie-break picks the same hub.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut best = Best::new();
    let mut base = 0usize;
    for x in small {
        let Some(rest) = large.get(base..) else {
            break;
        };
        let Some(first) = rest.first() else {
            break;
        };
        // Find `p`, the index in `rest` of the first hub >= x.hub.
        let p = if first.hub >= x.hub {
            0
        } else {
            // Invariant: rest[lo].hub < x.hub; double until the window
            // (lo, hi] brackets the boundary or runs off the end.
            let mut lo = 0usize;
            let mut hi = 1usize;
            while rest.get(hi).is_some_and(|e| e.hub < x.hub) {
                lo = hi;
                hi <<= 1;
            }
            let win = rest.get(lo + 1..hi.min(rest.len())).unwrap_or_default();
            lo + 1 + win.partition_point(|e| e.hub < x.hub)
        };
        match rest.get(p) {
            Some(y) if y.hub == x.hub => {
                best.update(x.hub, x.dist.saturating_add(y.dist));
                base += p + 1;
            }
            Some(_) => base += p,
            // Every remaining hub of `large` is below x.hub; later probes
            // only grow, so no further match is possible.
            None => break,
        }
    }
    best.into_option()
}

/// SIMD merge join: hub ids of the longer run are compared in blocks
/// against a broadcast of the shorter run's current hub; the distance
/// min-reduction runs through the shared scalar accumulator so ordering
/// and saturation semantics match the reference join exactly. Falls back
/// to [`join_branchless`] on targets without a vector unit.
pub fn join_simd(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    join_simd_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn join_simd_impl(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    if x86::avx2_available() {
        // SAFETY: the memoized runtime probe just confirmed AVX2 on this
        // CPU, which is `join_avx2`'s only requirement.
        unsafe { x86::join_avx2(a, b) }
    } else {
        // SAFETY: SSE2 is part of the x86_64 baseline — every CPU this
        // `cfg(target_arch = "x86_64")` code can run on has it.
        unsafe { x86::join_sse2(a, b) }
    }
}

#[cfg(target_arch = "aarch64")]
#[inline]
fn join_simd_impl(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    arm::join_neon(a, b)
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline]
fn join_simd_impl(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    join_branchless(a, b)
}

/// Name of the SIMD backend [`join_simd`] dispatches to on this machine,
/// for diagnostics and bench labels.
pub fn simd_backend() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::avx2_available() {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "scalar"
    }
}

/// The tier selector: the merge join [`crate::flat::LabelView`] (and, via
/// [`crate::labels::join_sorted_slices`], the pointer-per-vertex
/// [`crate::labels::LabelSet`]) runs for every slice-backed storage.
///
/// Selection uses only the two lengths: heavily skewed pairs gallop, short
/// runs take the branchless scan (its conditional-move loop beats branch
/// mispredictions when everything is cache-resident), and medium-and-up
/// similar-length runs keep the branchy scalar join, whose speculation
/// overlaps the label-run cache misses. The SIMD block probe stays opt-in
/// ([`join_simd`]): measured on serving-sized runs it trails the scalar
/// tiers (gather/unpack setup outweighs the compare throughput at label-run
/// lengths), so wiring it into the default path would regress the hot path
/// it exists to speed up — revisit if label runs grow past a few hundred
/// entries.
#[inline]
pub fn join_adaptive(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if s == 0 {
        return None;
    }
    if l >= s.saturating_mul(GALLOP_FACTOR) {
        return join_gallop(a, b);
    }
    if l < SIMD_MIN {
        return join_branchless(a, b);
    }
    join_scalar(a, b)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 block-compare joins. SSE2 is part of the x86_64 baseline, so
    //! `join_sse2` needs no detection; AVX2 goes through a memoized
    //! `is_x86_feature_detected!` probe.

    use std::arch::x86_64::{
        __m128i, _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_cmpgt_epi32,
        _mm256_i32gather_epi32, _mm256_movemask_ps, _mm256_set1_epi32, _mm256_setr_epi32,
        _mm256_xor_si256, _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_cmplt_epi32, _mm_loadu_si128,
        _mm_movemask_ps, _mm_set1_epi32, _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_xor_si128,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    use super::{join_branchless_into, Best};
    use crate::labels::LabelEntry;
    use chl_graph::types::Distance;

    /// Memoized AVX2 probe: 0 = not probed, 1 = absent, 2 = present.
    static AVX2: AtomicU8 = AtomicU8::new(0);

    /// `true` when this CPU supports AVX2 (probed once, then cached).
    #[inline]
    pub(super) fn avx2_available() -> bool {
        // ORDERING: the cached value is a pure function of the CPU — every
        // racing probe computes and stores the same byte, and no other
        // memory is published through it, so Relaxed suffices.
        match AVX2.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx2");
                // ORDERING: idempotent memoization of the probe above; all
                // writers store the identical value.
                AVX2.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
        }
    }

    /// Packs the hub ids of the four consecutive 16-byte [`LabelEntry`]
    /// records at `p` into one vector, lane `k` = hub of entry `k`.
    ///
    /// # Safety
    ///
    /// `p` must point at four readable, initialized `LabelEntry` records
    /// (64 bytes).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn hubs4(p: *const LabelEntry) -> __m128i {
        // SAFETY: the caller guarantees 64 readable bytes at `p`; the loads
        // are explicitly unaligned, and every bit pattern is a valid i32x4.
        unsafe {
            let e0 = _mm_loadu_si128(p.cast::<__m128i>());
            let e1 = _mm_loadu_si128(p.add(1).cast::<__m128i>());
            let e2 = _mm_loadu_si128(p.add(2).cast::<__m128i>());
            let e3 = _mm_loadu_si128(p.add(3).cast::<__m128i>());
            // Lane 0 of each entry vector is its hub (offset 0 in the
            // `#[repr(C)]` layout): interleave down to [h0, h1, h2, h3].
            let lo = _mm_unpacklo_epi32(e0, e1);
            let hi = _mm_unpacklo_epi32(e2, e3);
            _mm_unpacklo_epi64(lo, hi)
        }
    }

    /// SSE2 block-compare join. The shorter run drives; the longer run's
    /// hubs are scanned four at a time. SSE2 is part of the x86_64 baseline,
    /// so despite the `#[target_feature]` attribute (which is what lets the
    /// intrinsics be called without `unsafe`) this is a safe function:
    /// callers need no runtime detection.
    #[target_feature(enable = "sse2")]
    pub(super) fn join_sse2(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut best = Best::new();
        let mut i = 0usize;
        let mut j = 0usize;
        // Hub ids are unsigned but SSE2 only compares signed lanes: XOR
        // both sides with the sign bit to turn u32 order into i32 order.
        let sign = _mm_set1_epi32(i32::MIN);
        while i < small.len() && j + 4 <= large.len() {
            // SAFETY: `i < small.len()` holds by the loop condition.
            let x = unsafe { *small.get_unchecked(i) };
            // SAFETY: `j + 4 <= large.len()` holds by the loop condition,
            // so four entries starting at index j are readable.
            let hubs = unsafe { hubs4(large.as_ptr().add(j)) };
            let probe = _mm_set1_epi32(x.hub as i32);
            let lt = _mm_cmplt_epi32(_mm_xor_si128(hubs, sign), _mm_xor_si128(probe, sign));
            let ltm = (_mm_movemask_ps(_mm_castsi128_ps(lt)) as u32) & 0xF;
            if ltm == 0xF {
                // The whole block sits below the probe hub: skip it and
                // retry the same probe against the next block.
                j += 4;
                continue;
            }
            let eqm =
                (_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hubs, probe))) as u32) & 0xF;
            if eqm != 0 {
                let k = j + eqm.trailing_zeros() as usize;
                // SAFETY: eqm only has bits 0..4 set, so
                // k <= j + 3 < large.len().
                let y = unsafe { *large.get_unchecked(k) };
                best.update(x.hub, x.dist.saturating_add(y.dist));
                j = k + 1;
            } else {
                // Sorted block: lanes below the probe form a prefix.
                j += ltm.trailing_ones() as usize;
            }
            i += 1;
        }
        // Whatever the vector loop could not cover (tail of either run)
        // continues through the scalar core with the accumulated best.
        join_branchless_into(
            small.get(i..).unwrap_or_default(),
            large.get(j..).unwrap_or_default(),
            &mut best,
        );
        best.into_option()
    }

    /// AVX2 block-compare join: eight hubs per step, gathered straight out
    /// of the 16-byte entry stride.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (check [`avx2_available`] first).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn join_avx2(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut best = Best::new();
        let mut i = 0usize;
        let mut j = 0usize;
        let sign = _mm256_set1_epi32(i32::MIN);
        // Word offsets of the hub field in eight consecutive 16-byte
        // entries (stride 4 u32 words), for a scale-4 gather.
        let idx = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
        while i < small.len() && j + 8 <= large.len() {
            // SAFETY: `i < small.len()` holds by the loop condition.
            let x = unsafe { *small.get_unchecked(i) };
            // SAFETY: `j + 8 <= large.len()` by the loop condition, so the
            // eight gathered u32 words (offsets 0..=28 from entry j, scale
            // 4) all fall inside the slice; any bit pattern is valid.
            let hubs =
                unsafe { _mm256_i32gather_epi32::<4>(large.as_ptr().add(j).cast::<i32>(), idx) };
            let probe = _mm256_set1_epi32(x.hub as i32);
            // AVX2 has no cmplt: hub < probe is probe > hub, sign-biased.
            let lt =
                _mm256_cmpgt_epi32(_mm256_xor_si256(probe, sign), _mm256_xor_si256(hubs, sign));
            let ltm = (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32) & 0xFF;
            if ltm == 0xFF {
                j += 8;
                continue;
            }
            let eqm = (_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(hubs, probe)))
                as u32)
                & 0xFF;
            if eqm != 0 {
                let k = j + eqm.trailing_zeros() as usize;
                // SAFETY: eqm only has bits 0..8 set, so
                // k <= j + 7 < large.len().
                let y = unsafe { *large.get_unchecked(k) };
                best.update(x.hub, x.dist.saturating_add(y.dist));
                j = k + 1;
            } else {
                j += ltm.trailing_ones() as usize;
            }
            i += 1;
        }
        join_branchless_into(
            small.get(i..).unwrap_or_default(),
            large.get(j..).unwrap_or_default(),
            &mut best,
        );
        best.into_option()
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    //! aarch64 NEON block-compare join. NEON is part of the aarch64
    //! baseline, so no runtime detection is needed.

    use std::arch::aarch64::{
        uint32x4_t, vaddvq_u32, vandq_u32, vceqq_u32, vcltq_u32, vdupq_n_u32, vld1q_u32, vld4q_u32,
    };

    use super::{join_branchless_into, Best};
    use crate::labels::LabelEntry;
    use chl_graph::types::Distance;

    /// Lane weights turning an all-ones/all-zeros compare vector into a
    /// 4-bit mask via horizontal add.
    const MASK_WEIGHTS: [u32; 4] = [1, 2, 4, 8];

    /// Packs the hub ids of the four consecutive 16-byte [`LabelEntry`]
    /// records at `p` into one vector, lane `k` = hub of entry `k`.
    ///
    /// # Safety
    ///
    /// `p` must point at four readable, initialized `LabelEntry` records
    /// (64 bytes).
    #[inline]
    unsafe fn hubs4(p: *const LabelEntry) -> uint32x4_t {
        // SAFETY: the caller guarantees 64 readable bytes (16 u32 words) at
        // `p`; vld4q_u32 de-interleaves with stride 4, so field .0 collects
        // word 0 of each entry — the hub (offset 0 in `#[repr(C)]`).
        unsafe { vld4q_u32(p.cast::<u32>()).0 }
    }

    /// Collapses a per-lane all-ones/all-zeros vector into a 4-bit mask.
    #[inline]
    fn mask4(v: uint32x4_t) -> u32 {
        // SAFETY: MASK_WEIGHTS is a 4-element array, so the load reads
        // exactly 16 valid bytes; the arithmetic intrinsics have no
        // requirements beyond NEON, which is baseline on aarch64.
        unsafe { vaddvq_u32(vandq_u32(v, vld1q_u32(MASK_WEIGHTS.as_ptr()))) }
    }

    /// NEON block-compare join: same structure as the SSE2 variant, with
    /// native unsigned lane compares.
    pub(super) fn join_neon(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut best = Best::new();
        let mut i = 0usize;
        let mut j = 0usize;
        while i < small.len() && j + 4 <= large.len() {
            // SAFETY: `i < small.len()` holds by the loop condition.
            let x = unsafe { *small.get_unchecked(i) };
            // SAFETY: `j + 4 <= large.len()` holds by the loop condition,
            // so four entries starting at index j are readable.
            let hubs = unsafe { hubs4(large.as_ptr().add(j)) };
            // SAFETY: pure register arithmetic; NEON is statically
            // guaranteed on aarch64.
            let (ltm, eqm) = unsafe {
                let probe = vdupq_n_u32(x.hub);
                (mask4(vcltq_u32(hubs, probe)), mask4(vceqq_u32(hubs, probe)))
            };
            if ltm == 0xF {
                j += 4;
                continue;
            }
            if eqm != 0 {
                let k = j + eqm.trailing_zeros() as usize;
                // SAFETY: eqm only has bits 0..4 set, so
                // k <= j + 3 < large.len().
                let y = unsafe { *large.get_unchecked(k) };
                best.update(x.hub, x.dist.saturating_add(y.dist));
                j = k + 1;
            } else {
                j += ltm.trailing_ones() as usize;
            }
            i += 1;
        }
        join_branchless_into(
            small.get(i..).unwrap_or_default(),
            large.get(j..).unwrap_or_default(),
            &mut best,
        );
        best.into_option()
    }
}

/// Read-mostly cache of the top-`k` highest-ranked hubs' full distance
/// rows: `stripe(v)[h] = d(v, h)` for every vertex `v` labeled with hub
/// position `h < k`, `INFINITY` where the label is absent.
///
/// Hub labelings concentrate query traffic on the best-ranked hubs — the
/// rank-0 hub appears in almost every label set — so the head of most merge
/// joins (hubs `< k`) can be answered with `2k` array loads and a running
/// min, no merging at all. The tail (`hubs >= k`) still goes through
/// [`join_adaptive`]; [`LabelView::query_cached`] combines the two.
///
/// Storage is **vertex-major**: vertex `v`'s `k` cached distances are one
/// contiguous stripe, so a query touches two cache-line-sized stripes
/// instead of gathering one element from each of `k` hub rows spread
/// across `8·k·n` bytes (the hub-major layout missed cache on every load).
///
/// The cache costs `8 · k · n` bytes and is immutable after build: serving
/// tiers rebuild it on hot reload (see `chl serve`), which is what keeps it
/// coherent with the index snapshot it was built from.
#[derive(Debug, Clone)]
pub struct HotHubCache {
    /// Hub rank positions `0..k` are cached.
    k: u32,
    /// Stripe count (the index's global vertex count).
    n: usize,
    /// `n` stripes of `k` distances each, vertex-major.
    stripes: Box<[Distance]>,
}

impl HotHubCache {
    /// Builds the cache for the top-`k` hub positions of `view` (clamped to
    /// the vertex count: an index cannot have more hubs than vertices).
    pub fn build(view: &IndexView<'_>, k: u32) -> HotHubCache {
        match &view.storage {
            StorageView::Flat(v) => HotHubCache::build_from(v, k),
            StorageView::Compressed(v) => HotHubCache::build_from(v, k),
        }
    }

    /// Builds the cache from any storage-generic label view: one pass over
    /// each vertex's run prefix (runs are hub-sorted, so the `hub < k`
    /// prefix is all that is ever read).
    pub fn build_from<'a, S: LabelStorage<'a>>(view: &LabelView<'a, S>, k: u32) -> HotHubCache {
        let n = view.num_vertices();
        let k = (k as u64).min(n as u64) as u32;
        let mut stripes = vec![INFINITY; k as usize * n].into_boxed_slice();
        for v in 0..n as VertexId {
            let Some(run) = view.label_run(v) else {
                continue;
            };
            for e in run {
                if e.hub >= k {
                    break;
                }
                if let Some(slot) = stripes.get_mut(v as usize * k as usize + e.hub as usize) {
                    *slot = e.dist;
                }
            }
        }
        HotHubCache { k, n, stripes }
    }

    /// Number of hub positions cached (after clamping).
    pub fn top_k(&self) -> u32 {
        self.k
    }

    /// Vertex count the stripes were built for.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Heap bytes held by the distance stripes.
    pub fn memory_bytes(&self) -> usize {
        self.stripes.len() * std::mem::size_of::<Distance>()
    }

    /// Cached distance from `v` to hub position `h`, `INFINITY` when the
    /// label is absent or either id is out of range.
    #[inline]
    pub fn hub_distance(&self, h: u32, v: VertexId) -> Distance {
        if h >= self.k {
            return INFINITY;
        }
        self.stripes
            .get(v as usize * self.k as usize + h as usize)
            .copied()
            .unwrap_or(INFINITY)
    }

    /// Minimum `d(u,h) + d(v,h)` over the cached hubs, `INFINITY` when no
    /// cached hub covers the pair (absent labels are stored as `INFINITY`,
    /// which the saturating add absorbs). Out-of-range ids are `INFINITY`.
    #[inline]
    pub fn min_over_hot(&self, u: VertexId, v: VertexId) -> Distance {
        let (u, v) = (u as usize, v as usize);
        let k = self.k as usize;
        if u >= self.n || v >= self.n || k == 0 {
            return INFINITY;
        }
        // SAFETY: `u < n`, `v < n` were checked above and the stripes
        // buffer holds exactly `n * k` elements, so both ranges
        // `[x*k, x*k + k)` are in bounds.
        let (su, sv) = unsafe {
            (
                self.stripes.get_unchecked(u * k..u * k + k),
                self.stripes.get_unchecked(v * k..v * k + k),
            )
        };
        let mut bestv = INFINITY;
        for (du, dv) in su.iter().zip(sv) {
            let total = du.saturating_add(*dv);
            bestv = if total < bestv { total } else { bestv };
        }
        bestv
    }
}

/// Anything that can lend out a borrowed, runtime-dispatched [`IndexView`]
/// — the hook [`HotHubCached`] uses to build its cache and route queries.
pub trait ViewSource: Sync {
    /// A borrowed view of the underlying index.
    fn index_view(&self) -> IndexView<'_>;
}

impl ViewSource for FlatIndex {
    fn index_view(&self) -> IndexView<'_> {
        self.as_index_view()
    }
}

impl ViewSource for MmapIndex {
    fn index_view(&self) -> IndexView<'_> {
        self.view()
    }
}

/// A [`DistanceOracle`] adapter that consults a [`HotHubCache`] before the
/// merge join: `chl query --hot-hubs k` wraps its backend in one, and the
/// serving tier embeds the same cache in its reloadable snapshot.
pub struct HotHubCached<O> {
    inner: O,
    cache: HotHubCache,
}

impl<O: ViewSource> HotHubCached<O> {
    /// Builds the top-`k` cache from `inner`'s current view and wraps it.
    pub fn new(inner: O, k: u32) -> HotHubCached<O> {
        let cache = HotHubCache::build(&inner.index_view(), k);
        HotHubCached { inner, cache }
    }

    /// The cache being consulted.
    pub fn cache(&self) -> &HotHubCache {
        &self.cache
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps, dropping the cache.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ViewSource + DistanceOracle> DistanceOracle for HotHubCached<O> {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.inner.index_view().query_cached(&self.cache, u, v)
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.cache.memory_bytes()
    }
}

/// Hub-side pivoted evaluation of an S×T distance block, row-major —
/// the override behind [`DistanceOracle::matrix`] on every label-backed
/// oracle. Instead of |S|·|T| independent merge joins, the targets' label
/// unions are gathered **once** into a hub-sorted pool of
/// `(hub, column, distance)` triples; each source row then walks its own
/// run and relaxes only the pool slice of each hub it actually carries —
/// `O(|L(s)| + hits)` per row rather than `O(Σ_t(|L(s)| + |L(t)|))`. Rows
/// fan out across the rayon pool.
///
/// Answers are exactly [`LabelView::query`] per cell: same saturating adds,
/// same `INFINITY` for disconnected/out-of-range cells, and the same
/// `s == t → 0` self-distance rule (which on a shard file applies to
/// foreign vertices too, matching the shard-blind point query).
pub(crate) fn matrix_pivot<'a, S: LabelStorage<'a>>(
    view: &LabelView<'a, S>,
    sources: &[VertexId],
    targets: &[VertexId],
) -> Vec<Distance> {
    use rayon::prelude::*;

    let n = view.num_vertices();
    let cols = targets.len();
    // Pool every target label once: (hub position, column, distance),
    // sorted by (hub, column). Out-of-range targets contribute nothing and
    // therefore stay INFINITY in every row.
    let mut pool: Vec<(u32, u32, Distance)> = Vec::new();
    for (j, &t) in targets.iter().enumerate() {
        if let Some(run) = view.label_run(t) {
            pool.extend(run.map(|e| (e.hub, j as u32, e.dist)));
        }
    }
    pool.sort_unstable_by_key(|&(h, j, _)| (h, j));

    let rows: Vec<Vec<Distance>> = sources
        .par_iter()
        .map(|&s| {
            let mut row = vec![INFINITY; cols];
            if let Some(run) = view.label_run(s) {
                for e in run {
                    let lo = pool.partition_point(|&(h, _, _)| h < e.hub);
                    for &(h, j, d) in pool.iter().skip(lo) {
                        if h != e.hub {
                            break;
                        }
                        let cand = e.dist.saturating_add(d);
                        if let Some(cell) = row.get_mut(j as usize) {
                            if cand < *cell {
                                *cell = cand;
                            }
                        }
                    }
                }
            }
            if (s as usize) < n {
                for (cell, &t) in row.iter_mut().zip(targets) {
                    if t == s {
                        *cell = 0;
                    }
                }
            }
            row
        })
        .collect();
    let mut out = Vec::with_capacity(sources.len() * cols);
    for row in rows {
        out.extend(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::join_sorted_slices;

    fn run(entries: &[(u32, Distance)]) -> Vec<LabelEntry> {
        entries
            .iter()
            .map(|&(h, d)| LabelEntry::new(h, d))
            .collect()
    }

    fn reference(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(u32, Distance)> {
        crate::labels::join_sorted_iters(a.iter().copied(), b.iter().copied())
    }

    fn assert_all_tiers(a: &[LabelEntry], b: &[LabelEntry]) {
        let want = reference(a, b);
        assert_eq!(join_branchless(a, b), want, "branchless");
        assert_eq!(join_gallop(a, b), want, "gallop");
        assert_eq!(join_simd(a, b), want, "simd ({})", simd_backend());
        assert_eq!(join_adaptive(a, b), want, "adaptive");
        assert_eq!(join_sorted_slices(a, b), want, "join_sorted_slices front");
        // Symmetric in the distance (the hub is too — same common set).
        assert_eq!(join_adaptive(b, a).map(|(_, d)| d), want.map(|(_, d)| d));
    }

    #[test]
    fn empty_and_singleton_runs() {
        let e: Vec<LabelEntry> = Vec::new();
        let s = run(&[(3, 7)]);
        assert_all_tiers(&e, &e);
        assert_all_tiers(&e, &s);
        assert_all_tiers(&s, &e);
        assert_all_tiers(&s, &s);
        assert_all_tiers(&run(&[(2, 1)]), &s);
    }

    #[test]
    fn disjoint_hub_sets_yield_none() {
        let a = run(&[(0, 1), (2, 2), (4, 3), (6, 4), (8, 5)]);
        let b = run(&[(1, 1), (3, 2), (5, 3), (7, 4), (9, 5)]);
        assert_all_tiers(&a, &b);
        assert_eq!(join_adaptive(&a, &b), None);
    }

    #[test]
    fn tie_break_keeps_the_first_minimal_hub() {
        // Hubs 1 and 5 both sum to 10; the reference keeps hub 1.
        let a = run(&[(1, 4), (5, 3), (9, 50)]);
        let b = run(&[(1, 6), (5, 7), (9, 1)]);
        assert_all_tiers(&a, &b);
        assert_eq!(join_adaptive(&a, &b), Some((1, 10)));
    }

    #[test]
    fn distance_max_saturates_without_losing_the_hub() {
        let a = run(&[(2, Distance::MAX), (7, Distance::MAX - 1)]);
        let b = run(&[(2, 5), (7, Distance::MAX)]);
        assert_all_tiers(&a, &b);
        // Both common hubs saturate to MAX; the first one is reported.
        assert_eq!(join_adaptive(&a, &b), Some((2, Distance::MAX)));
    }

    #[test]
    fn long_skewed_runs_agree_across_tiers() {
        // 1:1000-style skew with matches sprinkled through the long run.
        let long: Vec<LabelEntry> = (0..1000)
            .map(|h| LabelEntry::new(h * 3, (h as u64) % 97))
            .collect();
        let short = run(&[(0, 5), (2997, 1), (1500, 2), (901, 3)]);
        let mut short = short;
        short.sort_unstable_by_key(|e| e.hub);
        assert_all_tiers(&short, &long);
        assert_all_tiers(&long, &long);
    }

    #[test]
    fn block_boundary_lengths_are_covered() {
        // Exercise vector-loop tails at every small length around the 4- and
        // 8-lane block sizes.
        for la in 0..=17usize {
            for lb in 0..=17usize {
                let a: Vec<LabelEntry> = (0..la)
                    .map(|h| LabelEntry::new(h as u32 * 2, h as u64 + 1))
                    .collect();
                let b: Vec<LabelEntry> = (0..lb)
                    .map(|h| LabelEntry::new(h as u32 * 3, h as u64 + 1))
                    .collect();
                assert_all_tiers(&a, &b);
            }
        }
    }

    #[test]
    fn adaptive_picks_gallop_on_skew() {
        let short = run(&[(64, 1)]);
        let long: Vec<LabelEntry> = (0..64).map(|h| LabelEntry::new(h, 2)).collect();
        // 64 >= 16 * 1: gallop tier; result still matches.
        assert_eq!(join_adaptive(&short, &long), reference(&short, &long));
        assert_eq!(join_gallop(&short, &long), reference(&short, &long));
    }

    #[test]
    fn hot_hub_cache_matches_plain_queries() {
        use crate::index::HubLabelIndex;
        use chl_ranking::Ranking;

        // Path 0 - 1 - 2, ranking 1 > 0 > 2 (the flat.rs tiny index).
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        let index = HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        );
        let flat = FlatIndex::from_index(&index);
        for k in [0u32, 1, 2, 3, 16] {
            let cached = HotHubCached::new(flat.clone(), k);
            assert_eq!(cached.cache().top_k(), k.min(3));
            for u in 0..5 {
                for v in 0..5 {
                    assert_eq!(cached.distance(u, v), flat.query(u, v), "k={k} ({u},{v})");
                }
            }
        }
        let cached = HotHubCached::new(flat.clone(), 2);
        assert!(cached.memory_bytes() > flat.memory_bytes());
        assert_eq!(cached.num_vertices(), 3);
        assert_eq!(cached.inner().num_vertices(), 3);
        assert_eq!(cached.into_inner().num_vertices(), 3);
    }

    #[test]
    fn cache_rows_hold_distances_for_present_labels_only() {
        use crate::index::HubLabelIndex;
        use chl_ranking::Ranking;

        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        let index = HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        );
        let flat = FlatIndex::from_index(&index);
        let cache = HotHubCache::build(&flat.as_index_view(), 1);
        // Hub position 0 is vertex 1: d = 1, 0, 1 along the path.
        assert_eq!(cache.min_over_hot(0, 2), 2);
        assert_eq!(cache.min_over_hot(1, 2), 1);
        // Out-of-range ids never panic.
        assert_eq!(cache.min_over_hot(7, 0), INFINITY);
        assert_eq!(cache.min_over_hot(0, 7), INFINITY);
        assert_eq!(cache.memory_bytes(), 3 * 8);
    }
}
