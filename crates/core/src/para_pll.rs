//! Shared-memory paraPLL (Qiu et al.) — the paper's `SparaPLL` baseline.
//!
//! Worker threads repeatedly pop the most important unprocessed vertex from a
//! shared counter and run pruned Dijkstra from it, *without* rank queries.
//! Because several SPTs are in flight concurrently, a tree rooted at a less
//! important vertex may label vertices that a still-running more important
//! tree would have covered; the resulting labeling satisfies the cover
//! property (queries stay exact) but is **not** canonical: it contains
//! redundant labels and its size grows with the number of threads — exactly
//! the behaviour the paper criticizes in §3 and Table 3 / Figure 9.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use chl_graph::CsrGraph;
use chl_ranking::Ranking;
use parking_lot::Mutex;

use crate::config::LabelingConfig;
use crate::index::{HubLabelIndex, LabelingResult};
use crate::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use crate::stats::ConstructionStats;
use crate::table::ConcurrentLabelTable;

/// Runs shared-memory paraPLL with `config.num_threads` workers.
///
/// Thin wrapper over [`crate::api::SParaPllLabeler`]; panics on invalid
/// inputs. Prefer [`crate::api::ChlBuilder`] in new code.
pub fn spara_pll(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::SParaPllLabeler
        .build(g, ranking, config)
        .unwrap_or_else(|e| panic!("spara_pll: {e}"))
}

pub(crate) fn spara_pll_impl(
    g: &CsrGraph,
    ranking: &Ranking,
    config: &LabelingConfig,
) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let threads = config.effective_threads().max(1);
    let table = ConcurrentLabelTable::new(n);
    let next_root = AtomicU32::new(0);
    let records = Mutex::new(Vec::with_capacity(n));
    let query_count = Mutex::new(0usize);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = DijkstraScratch::new(n);
                let opts = PruneOptions {
                    rank_query: false,
                    ..Default::default()
                };
                let mut local_records = Vec::new();
                let mut local_queries = 0usize;
                loop {
                    // ORDERING: root claiming — the fetch_add's RMW
                    // atomicity alone makes positions unique; results are
                    // published via the records mutex and the scope join.
                    let pos = next_root.fetch_add(1, Ordering::Relaxed);
                    if pos as usize >= n {
                        break;
                    }
                    let root = ranking.vertex_at(pos);
                    let (record, queries) =
                        pruned_dijkstra(g, ranking, root, &table, opts, &mut scratch);
                    local_records.push(record);
                    local_queries += queries;
                }
                records.lock().extend(local_records);
                *query_count.lock() += local_queries;
            });
        }
    });

    let mut stats = ConstructionStats::new("SparaPLL");
    stats.threads = threads;
    stats.spt_records = records.into_inner();
    stats.distance_queries = query_count.into_inner();
    stats.construction_time = start.elapsed();
    stats.total_time = start.elapsed();

    let index = HubLabelIndex::new(table.into_label_sets(), ranking.clone())
        .expect("constructor produced one label set per vertex");
    stats.labels_before_cleaning = index.total_labels();
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi};
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    #[test]
    fn queries_are_exact_despite_concurrency() {
        let g = erdos_renyi(80, 0.06, 16, 3);
        let ranking = degree_ranking(&g);
        let result = spara_pll(&g, &ranking, &LabelingConfig::default().with_threads(4));
        for src in [0u32, 11, 55] {
            let d = dijkstra(&g, src);
            for v in 0..80u32 {
                assert_eq!(result.index.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn label_count_is_at_least_canonical() {
        let g = barabasi_albert(150, 3, 9);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index.total_labels();
        let parallel = spara_pll(&g, &ranking, &LabelingConfig::default().with_threads(8))
            .index
            .total_labels();
        assert!(parallel >= canonical);
    }

    #[test]
    fn single_thread_matches_sequential_pll_exactly() {
        let g = erdos_renyi(50, 0.1, 8, 21);
        let ranking = degree_ranking(&g);
        let seq = sequential_pll(&g, &ranking);
        let par = spara_pll(&g, &ranking, &LabelingConfig::default().with_threads(1));
        assert_eq!(seq.index, par.index);
    }

    #[test]
    fn stats_cover_all_spts() {
        let g = erdos_renyi(40, 0.1, 4, 2);
        let ranking = degree_ranking(&g);
        let result = spara_pll(&g, &ranking, &LabelingConfig::default().with_threads(3));
        assert_eq!(result.stats.spt_records.len(), 40);
        assert_eq!(result.stats.threads, 3);
        assert_eq!(result.stats.algorithm, "SparaPLL");
    }
}
