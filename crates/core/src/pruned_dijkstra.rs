//! Pruned Dijkstra with Rank Queries — Algorithm 1 of the paper.
//!
//! This is the per-root kernel shared by every *pruning-based* constructor
//! (sequential PLL, paraPLL, LCC, GLL). Given the current labels, it grows a
//! shortest-path tree from a root `h` and, for every vertex `v` it settles:
//!
//! 1. **Rank query** (optional): if `v` is more important than `h`, prune the
//!    tree at `v` and do not label `v`. This is the addition that makes the
//!    parallel labeling *respect the hierarchy* (LCC/GLL); paraPLL omits it.
//! 2. **Distance query**: if some hub common to `h` and `v` already certifies
//!    a distance `<= δ_v`, prune at `v` without labeling it.
//! 3. Otherwise add `(h, δ_v)` to `v`'s labels and relax `v`'s edges.

use chl_graph::sssp::heap::DistanceQueue;
use chl_graph::types::{dist_add, Distance, VertexId, INFINITY};
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::labels::{LabelEntry, RootLabelHash};
use crate::stats::SptRecord;
use crate::table::LabelAccess;

/// Reusable scratch buffers for repeated pruned-Dijkstra runs. Allocating the
/// distance array once per worker thread (instead of once per SPT) mirrors
/// the paper's note that initialization only touches entries modified by the
/// previous run.
pub struct DijkstraScratch {
    dist: Vec<Distance>,
    touched: Vec<VertexId>,
    queue: DistanceQueue,
    label_buf: Vec<LabelEntry>,
}

impl DijkstraScratch {
    /// Creates scratch space for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            dist: vec![INFINITY; n],
            touched: Vec::new(),
            queue: DistanceQueue::new(),
            label_buf: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
        }
        self.touched.clear();
        self.queue.clear();
        self.label_buf.clear();
    }
}

/// Options controlling one pruned-Dijkstra run.
#[derive(Debug, Clone, Copy)]
pub struct PruneOptions {
    /// Enable the rank query (prune at vertices more important than the root).
    pub rank_query: bool,
    /// Restrict distance queries to hubs with rank position strictly below
    /// this bound (`u32::MAX` = use every available hub). Figure 4 of the
    /// paper sweeps this bound.
    pub max_pruning_hub: u32,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions {
            rank_query: true,
            max_pruning_hub: u32::MAX,
        }
    }
}

/// Runs Algorithm 1 from `root`, appending generated labels through `labels`.
/// Returns the per-SPT instrumentation record (labels generated, vertices
/// explored) plus the number of distance queries issued via the second tuple
/// element.
pub fn pruned_dijkstra<L: LabelAccess>(
    g: &CsrGraph,
    ranking: &Ranking,
    root: VertexId,
    labels: &L,
    opts: PruneOptions,
    scratch: &mut DijkstraScratch,
) -> (SptRecord, usize) {
    debug_assert_eq!(g.num_vertices(), ranking.len());
    scratch.reset();
    let root_pos = ranking.position(root);

    // LR = hash(L_h): the root's current labels, hashed once per SPT.
    scratch.label_buf.clear();
    labels.collect_labels(root, &mut scratch.label_buf);
    let root_hash = if opts.max_pruning_hub == u32::MAX {
        RootLabelHash::from_entries(scratch.label_buf.iter().copied())
    } else {
        RootLabelHash::from_entries(
            scratch
                .label_buf
                .iter()
                .copied()
                .filter(|e| e.hub < opts.max_pruning_hub),
        )
    };

    let mut record = SptRecord {
        root_position: root_pos,
        labels_generated: 0,
        vertices_explored: 0,
    };
    let mut distance_queries = 0usize;

    scratch.dist[root as usize] = 0;
    scratch.touched.push(root);
    scratch.queue.push(0, root);

    while let Some((d, v)) = scratch.queue.pop() {
        if d > scratch.dist[v as usize] {
            continue; // stale queue entry
        }
        record.vertices_explored += 1;

        // Rank query: a more important vertex terminates this branch.
        if opts.rank_query && ranking.position(v) < root_pos {
            continue;
        }

        // Distance query against the labels v has accumulated so far.
        if v != root {
            scratch.label_buf.clear();
            labels.collect_labels(v, &mut scratch.label_buf);
            distance_queries += 1;
            let covered = if opts.max_pruning_hub == u32::MAX {
                root_hash.covers(&scratch.label_buf, d)
            } else {
                let filtered: Vec<LabelEntry> = scratch
                    .label_buf
                    .iter()
                    .copied()
                    .filter(|e| e.hub < opts.max_pruning_hub)
                    .collect();
                root_hash.covers(&filtered, d)
            };
            if covered {
                continue;
            }
        }

        labels.append(v, LabelEntry::new(root_pos, d));
        record.labels_generated += 1;

        for (u, w) in g.neighbors(v) {
            let cand = dist_add(d, w);
            if cand < scratch.dist[u as usize] {
                if scratch.dist[u as usize] == INFINITY {
                    scratch.touched.push(u);
                }
                scratch.dist[u as usize] = cand;
                scratch.queue.push(cand, u);
            }
        }
    }

    (record, distance_queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ConcurrentLabelTable;
    use chl_graph::generators::path_graph;
    use chl_graph::GraphBuilder;

    fn figure_one_graph() -> CsrGraph {
        // Figure 1 of the paper: v1=0 ... v5=4.
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 3);
        b.add_edge(0, 3, 5);
        b.add_edge(3, 4, 4);
        b.add_edge(2, 4, 2);
        b.add_edge(1, 2, 10);
        b.add_edge(1, 4, 14);
        b.build().unwrap()
    }

    #[test]
    fn reproduces_figure_1b_spt_v2() {
        // Ranking: v1 > v2 > v3 > v4 > v5, i.e. the identity order.
        let g = figure_one_graph();
        let ranking = Ranking::identity(5);
        let table = ConcurrentLabelTable::new(5);
        let mut scratch = DijkstraScratch::new(5);

        // First build SPT_v1 (root 0): labels every vertex with hub v1.
        let (rec0, _) = pruned_dijkstra(
            &g,
            &ranking,
            0,
            &table,
            PruneOptions::default(),
            &mut scratch,
        );
        assert_eq!(rec0.labels_generated, 5);

        // Then SPT_v2 (root 1): the paper's walkthrough generates labels for
        // v2 (itself, dist 0) and v3 (dist 10), pruning v1 and v5.
        let (rec1, queries) = pruned_dijkstra(
            &g,
            &ranking,
            1,
            &table,
            PruneOptions::default(),
            &mut scratch,
        );
        assert_eq!(rec1.labels_generated, 2);
        assert!(queries > 0);
        let sets = table.into_label_sets();
        assert_eq!(sets[1].distance_to_hub(1), Some(0));
        assert_eq!(sets[2].distance_to_hub(1), Some(10));
        assert_eq!(sets[4].distance_to_hub(1), None); // pruned via common hub v1
        assert_eq!(sets[0].distance_to_hub(1), None); // rank query pruned
    }

    #[test]
    fn rank_query_prunes_more_important_vertices() {
        // Path 0-1-2 where the middle vertex is the most important. An SPT
        // rooted at 0 (less important) must not label vertex 1 or anything
        // beyond it.
        let g = path_graph(3);
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        let table = ConcurrentLabelTable::new(3);
        let mut scratch = DijkstraScratch::new(3);
        let (rec, _) = pruned_dijkstra(
            &g,
            &ranking,
            0,
            &table,
            PruneOptions::default(),
            &mut scratch,
        );
        assert_eq!(rec.labels_generated, 1); // only the root labels itself
        let sets = table.into_label_sets();
        assert!(sets[1].is_empty());
        assert!(sets[2].is_empty());
    }

    #[test]
    fn without_rank_query_labels_leak_past_important_vertices() {
        // Same setup as above but with the rank query disabled (paraPLL
        // behaviour): when no earlier labels exist the root labels everything.
        let g = path_graph(3);
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        let table = ConcurrentLabelTable::new(3);
        let mut scratch = DijkstraScratch::new(3);
        let opts = PruneOptions {
            rank_query: false,
            ..Default::default()
        };
        let (rec, _) = pruned_dijkstra(&g, &ranking, 0, &table, opts, &mut scratch);
        assert_eq!(rec.labels_generated, 3);
    }

    #[test]
    fn distance_query_prunes_covered_vertices() {
        // Star with center 0 (most important). After SPT_0, an SPT from any
        // leaf only labels the leaf itself: the center and every other leaf
        // are covered through hub 0. The rank query is disabled so the prune
        // at the center is attributable to the distance query alone.
        let g = chl_graph::generators::star_graph(5);
        let ranking = Ranking::identity(5);
        let table = ConcurrentLabelTable::new(5);
        let mut scratch = DijkstraScratch::new(5);
        pruned_dijkstra(
            &g,
            &ranking,
            0,
            &table,
            PruneOptions::default(),
            &mut scratch,
        );
        let opts = PruneOptions {
            rank_query: false,
            ..Default::default()
        };
        let (rec, _) = pruned_dijkstra(&g, &ranking, 1, &table, opts, &mut scratch);
        assert_eq!(rec.labels_generated, 1);
        let sets = table.into_label_sets();
        for leaf in 2..5u32 {
            assert_eq!(sets[leaf as usize].distance_to_hub(1), None);
        }
    }

    #[test]
    fn restricted_pruning_hub_bound_generates_more_labels() {
        // On a cycle, SPT_1 prunes at the antipodal vertex through hub 0 when
        // distance queries are allowed; with rank queries only (bound = 0)
        // that vertex receives an extra, redundant label.
        let g = chl_graph::generators::cycle_graph(6);
        let ranking = Ranking::identity(6);

        let full = ConcurrentLabelTable::new(6);
        let mut scratch = DijkstraScratch::new(6);
        for v in 0..6u32 {
            pruned_dijkstra(
                &g,
                &ranking,
                v,
                &full,
                PruneOptions::default(),
                &mut scratch,
            );
        }

        let restricted = ConcurrentLabelTable::new(6);
        let opts = PruneOptions {
            rank_query: true,
            max_pruning_hub: 0,
        };
        for v in 0..6u32 {
            pruned_dijkstra(&g, &ranking, v, &restricted, opts, &mut scratch);
        }
        assert!(restricted.total_labels() > full.total_labels());

        // Allowing the single most important hub for pruning already recovers
        // part of the gap.
        let partial = ConcurrentLabelTable::new(6);
        let opts = PruneOptions {
            rank_query: true,
            max_pruning_hub: 1,
        };
        for v in 0..6u32 {
            pruned_dijkstra(&g, &ranking, v, &partial, opts, &mut scratch);
        }
        assert!(partial.total_labels() <= restricted.total_labels());
        assert!(partial.total_labels() >= full.total_labels());
    }

    #[test]
    fn scratch_is_reusable_across_roots() {
        // Re-running the same root with a scratch that has been used for many
        // other roots must give identical output (i.e. the per-run reset is
        // complete).
        let g = path_graph(6);
        let ranking = Ranking::identity(6);
        let fresh_table = ConcurrentLabelTable::new(6);
        let mut fresh_scratch = DijkstraScratch::new(6);
        let (fresh_rec, _) = pruned_dijkstra(
            &g,
            &ranking,
            0,
            &fresh_table,
            PruneOptions::default(),
            &mut fresh_scratch,
        );

        let reused_table = ConcurrentLabelTable::new(6);
        let mut reused_scratch = DijkstraScratch::new(6);
        for v in 1..6u32 {
            let scratch_only = ConcurrentLabelTable::new(6);
            pruned_dijkstra(
                &g,
                &ranking,
                v,
                &scratch_only,
                PruneOptions::default(),
                &mut reused_scratch,
            );
        }
        let (reused_rec, _) = pruned_dijkstra(
            &g,
            &ranking,
            0,
            &reused_table,
            PruneOptions::default(),
            &mut reused_scratch,
        );

        assert_eq!(fresh_rec, reused_rec);
        assert_eq!(fresh_table.snapshot(5), reused_table.snapshot(5));
    }
}
