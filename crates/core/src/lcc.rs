//! LCC — Label Construction and Cleaning (Algorithm 2 of the paper).
//!
//! LCC treats the simultaneous construction of many SPTs as an *optimistic*
//! parallelization of PLL: worker threads claim roots in rank order and run
//! pruned Dijkstra **with rank queries** concurrently. Rank queries guarantee
//! two invariants the later cleaning pass depends on:
//!
//! * a vertex is only ever labeled by hubs at least as important as itself,
//! * the resulting labeling satisfies the cover property and *respects* the
//!   hierarchy (Claim 1).
//!
//! The optimistic phase may still insert labels that are not canonical; a
//! single cleaning pass (Lemma 2) removes exactly those, leaving the CHL.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use chl_graph::CsrGraph;
use chl_ranking::Ranking;
use parking_lot::Mutex;

use crate::cleaning::clean_labels;
use crate::config::LabelingConfig;
use crate::index::{HubLabelIndex, LabelingResult};
use crate::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use crate::stats::ConstructionStats;
use crate::table::ConcurrentLabelTable;

/// Runs the two-phase LCC algorithm and returns the Canonical Hub Labeling.
///
/// Thin wrapper over [`crate::api::LccLabeler`]; panics on invalid inputs.
/// Prefer [`crate::api::ChlBuilder`] in new code.
pub fn lcc(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::LccLabeler
        .build(g, ranking, config)
        .unwrap_or_else(|e| panic!("lcc: {e}"))
}

pub(crate) fn lcc_impl(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let threads = config.effective_threads().max(1);
    let table = ConcurrentLabelTable::new(n);
    let next_root = AtomicU32::new(0);
    let records = Mutex::new(Vec::with_capacity(n));
    let query_count = Mutex::new(0usize);

    // Phase LCC-I: optimistic parallel label construction with rank queries.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = DijkstraScratch::new(n);
                let opts = PruneOptions {
                    rank_query: true,
                    ..Default::default()
                };
                let mut local_records = Vec::new();
                let mut local_queries = 0usize;
                loop {
                    // ORDERING: root claiming — the fetch_add's RMW
                    // atomicity alone makes positions unique; results are
                    // published via the records mutex and the scope join.
                    let pos = next_root.fetch_add(1, Ordering::Relaxed);
                    if pos as usize >= n {
                        break;
                    }
                    let root = ranking.vertex_at(pos);
                    let (record, queries) =
                        pruned_dijkstra(g, ranking, root, &table, opts, &mut scratch);
                    local_records.push(record);
                    local_queries += queries;
                }
                records.lock().extend(local_records);
                *query_count.lock() += local_queries;
            });
        }
    });
    let construction_time = start.elapsed();

    // Phase LCC-II: sort the label sets and delete every redundant label.
    // The rayon-parallel cleaning pass is pinned to the configured thread
    // count so `--threads` caps the whole build, not just phase I.
    let constructed = table.into_label_sets();
    let labels_before: usize = constructed.iter().map(|s| s.len()).sum();
    let clean_start = Instant::now();
    let clean_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let (cleaned, _removed) = clean_pool.install(|| clean_labels(&constructed, ranking));
    let cleaning_time = clean_start.elapsed();

    let index = HubLabelIndex::new(cleaned, ranking.clone())
        .expect("constructor produced one label set per vertex");
    let mut stats = ConstructionStats::new("LCC");
    stats.threads = threads;
    stats.spt_records = records.into_inner();
    stats.distance_queries = query_count.into_inner();
    stats.construction_time = construction_time;
    stats.cleaning_time = cleaning_time;
    stats.total_time = start.elapsed();
    stats.labels_before_cleaning = labels_before;
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    #[test]
    fn lcc_produces_the_canonical_labeling() {
        let g = erdos_renyi(70, 0.08, 16, 11);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let parallel = lcc(&g, &ranking, &LabelingConfig::default().with_threads(4)).index;
        assert_eq!(canonical, parallel);
    }

    #[test]
    fn lcc_on_road_like_graph_matches_pll() {
        let g = grid_network(
            &GridOptions {
                rows: 9,
                cols: 8,
                ..GridOptions::default()
            },
            17,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 24,
                degree_tiebreak: true,
            },
            3,
        );
        let canonical = sequential_pll(&g, &ranking).index;
        let parallel = lcc(&g, &ranking, &LabelingConfig::default().with_threads(8)).index;
        assert_eq!(canonical, parallel);
    }

    #[test]
    fn lcc_queries_match_dijkstra_on_scale_free_graph() {
        let g = barabasi_albert(160, 3, 21);
        let ranking = degree_ranking(&g);
        let result = lcc(&g, &ranking, &LabelingConfig::default().with_threads(6));
        for src in [0u32, 40, 120] {
            let d = dijkstra(&g, src);
            for v in 0..160u32 {
                assert_eq!(result.index.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn stats_report_both_phases() {
        let g = erdos_renyi(50, 0.1, 8, 5);
        let ranking = degree_ranking(&g);
        let result = lcc(&g, &ranking, &LabelingConfig::default().with_threads(4));
        assert!(result.stats.labels_before_cleaning >= result.stats.labels_after_cleaning);
        assert_eq!(
            result.stats.labels_after_cleaning,
            result.index.total_labels()
        );
        assert_eq!(result.stats.spt_records.len(), 50);
        assert_eq!(result.stats.algorithm, "LCC");
        assert!(result.stats.total_time >= result.stats.cleaning_time);
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let mut b = chl_graph::GraphBuilder::new_undirected();
        b.add_edge(0, 1, 3);
        b.add_edge(2, 3, 4);
        b.ensure_vertices(5);
        let g = b.build().unwrap();
        let ranking = degree_ranking(&g);
        let result = lcc(&g, &ranking, &LabelingConfig::default().with_threads(2));
        assert_eq!(result.index.query(0, 1), 3);
        assert_eq!(result.index.query(0, 3), chl_graph::types::INFINITY);
        assert_eq!(result.index.query(4, 0), chl_graph::types::INFINITY);
        assert_eq!(result.index.query(4, 4), 0);
    }
}
