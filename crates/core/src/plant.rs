//! PLaNT — Prune Labels and (do) Not (prune) Trees (Algorithm 3, §5.2).
//!
//! PLaNT inverts PLL's trade-off: instead of pruning the shortest-path tree
//! with queries against previously generated labels (which requires those
//! labels to be *present*, the very thing a distributed memory system cannot
//! afford), it explores the tree without label-based pruning and decides
//! locally whether to emit a label. While growing `SPT_h` it propagates, for
//! every vertex `v`, the most important **ancestor** seen on the chosen
//! shortest path from `h` to `v` (ties between equal-length paths are broken
//! towards the path with the more important ancestor). A label `(h, δ_v)` is
//! emitted iff neither `v` nor its ancestor outranks `h` — i.e. iff `h` is
//! the most important vertex on the shortest paths between `h` and `v`,
//! which is exactly the canonical-hub condition. The output is therefore
//! non-redundant *by construction*, with zero dependence on other SPTs.
//!
//! Two optimizations from the paper are included:
//!
//! * **Early termination**: once no vertex in the priority queue can still
//!   produce a label (its ancestor already outranks the root), the rest of
//!   the traversal is useless and is abandoned.
//! * **Common-label pruning** (§5.3): when the complete label sets of the
//!   `η` most important hubs are available (the *Common Label Table*),
//!   distance queries against them can prune the traversal without risking
//!   redundant labels.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use chl_graph::sssp::heap::DistanceQueue;
use chl_graph::types::{dist_add, Distance, VertexId, INFINITY};
use chl_graph::CsrGraph;
use chl_ranking::Ranking;
use parking_lot::Mutex;

use crate::config::LabelingConfig;
use crate::index::{HubLabelIndex, LabelingResult};
use crate::labels::{LabelEntry, LabelSet, RootLabelHash};
use crate::stats::{ConstructionStats, SptRecord};
use crate::table::ConcurrentLabelTable;

/// Labels of the `η` most important hubs, replicated everywhere (§5.3). Both
/// the PLaNT kernel and DGLL use it to prune traversal safely.
#[derive(Debug, Clone, Default)]
pub struct CommonLabelTable {
    /// `per_vertex[v]` holds `v`'s labels whose hub rank position is `< eta`.
    per_vertex: Vec<LabelSet>,
    /// The table covers hubs with rank position `0..eta`.
    eta: u32,
}

impl CommonLabelTable {
    /// Creates an empty table (prunes nothing).
    pub fn empty(num_vertices: usize) -> Self {
        CommonLabelTable {
            per_vertex: vec![LabelSet::new(); num_vertices],
            eta: 0,
        }
    }

    /// Builds the table from a full labeling by keeping, for every vertex,
    /// only the labels whose hub ranks within the top `eta` positions.
    pub fn from_labels(labels: &[LabelSet], eta: u32) -> Self {
        CommonLabelTable {
            per_vertex: labels.iter().map(|s| s.restrict_to_top_hubs(eta)).collect(),
            eta,
        }
    }

    /// Inserts a single label (used as labels of top hubs are broadcast).
    pub fn insert(&mut self, v: VertexId, entry: LabelEntry) {
        debug_assert!(entry.hub < self.eta.max(entry.hub + 1));
        self.per_vertex[v as usize].push(entry);
    }

    /// Creates an empty table that will accept hubs ranked `< eta`.
    pub fn with_eta(num_vertices: usize, eta: u32) -> Self {
        CommonLabelTable {
            per_vertex: vec![LabelSet::new(); num_vertices],
            eta,
        }
    }

    /// Number of hub positions covered.
    pub fn eta(&self) -> u32 {
        self.eta
    }

    /// Labels stored for `v`.
    pub fn labels_of(&self, v: VertexId) -> &LabelSet {
        &self.per_vertex[v as usize]
    }

    /// Total number of labels stored in the table.
    pub fn total_labels(&self) -> usize {
        self.per_vertex.iter().map(LabelSet::len).sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.per_vertex.iter().map(LabelSet::memory_bytes).sum()
    }
}

/// Outcome of one PLaNTed SPT: the labels it generated (as
/// `(vertex, distance)` pairs — the hub is the root) plus instrumentation.
#[derive(Debug, Clone)]
pub struct PlantedTree {
    /// Rank position of the root.
    pub root_position: u32,
    /// `(labeled vertex, distance to the root)` pairs.
    pub labels: Vec<(VertexId, Distance)>,
    /// Number of vertices popped from the queue.
    pub vertices_explored: usize,
}

impl PlantedTree {
    /// Converts to the generic per-SPT record.
    pub fn record(&self) -> SptRecord {
        SptRecord {
            root_position: self.root_position,
            labels_generated: self.labels.len(),
            vertices_explored: self.vertices_explored,
        }
    }
}

/// Scratch buffers reused across PLaNT Dijkstra runs.
pub struct PlantScratch {
    dist: Vec<Distance>,
    ancestor: Vec<VertexId>,
    touched: Vec<VertexId>,
    queue: DistanceQueue,
}

impl PlantScratch {
    /// Creates scratch space for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        PlantScratch {
            dist: vec![INFINITY; n],
            ancestor: (0..n as VertexId).collect(),
            touched: Vec::new(),
            queue: DistanceQueue::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
            self.ancestor[v as usize] = v;
        }
        self.touched.clear();
        self.queue.clear();
    }
}

/// Runs one PLaNTed SPT from `root` (Algorithm 3).
///
/// `common` supplies the Common Label Table for optional traversal pruning;
/// pass [`CommonLabelTable::empty`] (or a table with `eta = 0`) to disable
/// pruning entirely. Pruning only ever uses hubs strictly more important than
/// the root, so it cannot suppress canonical labels.
pub fn plant_dijkstra(
    g: &CsrGraph,
    ranking: &Ranking,
    root: VertexId,
    early_termination: bool,
    common: &CommonLabelTable,
    scratch: &mut PlantScratch,
) -> PlantedTree {
    debug_assert_eq!(g.num_vertices(), ranking.len());
    scratch.reset();
    let root_pos = ranking.position(root);

    // Root-side hash of common labels, restricted to hubs more important than
    // the root (the only hubs for which pruning is provably safe).
    let usable_eta = common.eta().min(root_pos);
    let root_common_hash = if usable_eta > 0 {
        Some(RootLabelHash::from_entries(
            common
                .labels_of(root)
                .entries()
                .iter()
                .copied()
                .filter(|e| e.hub < usable_eta),
        ))
    } else {
        None
    };

    let mut tree = PlantedTree {
        root_position: root_pos,
        labels: Vec::new(),
        vertices_explored: 0,
    };

    scratch.dist[root as usize] = 0;
    scratch.ancestor[root as usize] = root;
    scratch.touched.push(root);
    scratch.queue.push(0, root);
    // Number of not-yet-settled reachable vertices whose current ancestor is
    // still the root (i.e. that can still produce a label).
    let mut fertile = 1i64;

    while let Some((d, v)) = scratch.queue.pop() {
        if early_termination && fertile <= 0 {
            break;
        }
        if d > scratch.dist[v as usize] {
            continue; // stale entry
        }
        tree.vertices_explored += 1;

        let anc = scratch.ancestor[v as usize];
        if anc == root {
            fertile -= 1;
        }
        // nA: the most important of {v, a[v]} — the most important vertex on
        // the chosen shortest path from the root to v.
        let most_important = ranking.more_important_of(v, anc);

        // Optional distance-query pruning against the Common Label Table.
        if let Some(hash) = &root_common_hash {
            let v_common = common.labels_of(v);
            let filtered: Vec<LabelEntry> = v_common
                .entries()
                .iter()
                .copied()
                .filter(|e| e.hub < usable_eta)
                .collect();
            if !filtered.is_empty() && hash.covers(&filtered, d) {
                continue;
            }
        }

        let produces_label = !ranking.is_more_important(most_important, root);
        if produces_label {
            tree.labels.push((v, d));
        }

        for (u, w) in g.neighbors(v) {
            let cand = dist_add(d, w);
            let prev_anc = scratch.ancestor[u as usize];
            if cand < scratch.dist[u as usize] {
                if scratch.dist[u as usize] == INFINITY {
                    scratch.touched.push(u);
                }
                scratch.dist[u as usize] = cand;
                let new_anc = ranking.more_important_of(most_important, u);
                if new_anc == root && prev_anc != root {
                    fertile += 1;
                } else if new_anc != root && prev_anc == root {
                    fertile -= 1;
                }
                scratch.ancestor[u as usize] = new_anc;
                scratch.queue.push(cand, u);
            } else if cand == scratch.dist[u as usize] && cand != INFINITY {
                // Equal-length path: keep the more important ancestor so that
                // redundancy is judged against the union of shortest paths.
                let new_anc = ranking.more_important_of(most_important, prev_anc);
                if new_anc != prev_anc {
                    if new_anc == root && prev_anc != root {
                        fertile += 1;
                    } else if new_anc != root && prev_anc == root {
                        fertile -= 1;
                    }
                    scratch.ancestor[u as usize] = new_anc;
                }
            }
        }
    }
    tree
}

/// Embarrassingly parallel CHL construction: every root is PLaNTed
/// independently; no pruning queries, no cleaning, no cross-SPT state.
///
/// Thin wrapper over [`crate::api::PlantLabeler`]; panics on invalid inputs.
/// Prefer [`crate::api::ChlBuilder`] in new code.
pub fn plant_labeling(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::PlantLabeler
        .build(g, ranking, config)
        .unwrap_or_else(|e| panic!("plant_labeling: {e}"))
}

pub(crate) fn plant_labeling_impl(
    g: &CsrGraph,
    ranking: &Ranking,
    config: &LabelingConfig,
) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let threads = config.effective_threads().max(1);
    let table = ConcurrentLabelTable::new(n);
    let next_root = AtomicU32::new(0);
    let records = Mutex::new(Vec::with_capacity(n));
    let common = CommonLabelTable::empty(n);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = PlantScratch::new(n);
                let mut local_records = Vec::new();
                loop {
                    // ORDERING: root claiming — the fetch_add's RMW
                    // atomicity alone makes positions unique; labels are
                    // published via the common table's locks and the scope
                    // join.
                    let pos = next_root.fetch_add(1, Ordering::Relaxed);
                    if pos as usize >= n {
                        break;
                    }
                    let root = ranking.vertex_at(pos);
                    let tree = plant_dijkstra(
                        g,
                        ranking,
                        root,
                        config.early_termination,
                        &common,
                        &mut scratch,
                    );
                    for &(v, d) in &tree.labels {
                        table.append(v, LabelEntry::new(pos, d));
                    }
                    local_records.push(tree.record());
                }
                records.lock().extend(local_records);
            });
        }
    });

    let mut stats = ConstructionStats::new("PLaNT");
    stats.threads = threads;
    stats.spt_records = records.into_inner();
    stats.planted_trees = n;
    stats.construction_time = start.elapsed();
    stats.total_time = start.elapsed();

    let index = HubLabelIndex::new(table.into_label_sets(), ranking.clone())
        .expect("constructor produced one label set per vertex");
    stats.labels_before_cleaning = index.total_labels();
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_graph::GraphBuilder;
    use chl_ranking::degree_ranking;

    fn figure_one_graph() -> CsrGraph {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 3);
        b.add_edge(0, 3, 5);
        b.add_edge(3, 4, 4);
        b.add_edge(2, 4, 2);
        b.add_edge(1, 2, 10);
        b.add_edge(1, 4, 14);
        b.build().unwrap()
    }

    #[test]
    fn reproduces_figure_1c_spt_v2() {
        // PLaNTing SPT_v2 after SPT_v1 generates exactly the same labels PLL
        // would: (v2, 0) at v2 and (v2, 10) at v3 — nothing at v1, v4, v5.
        let g = figure_one_graph();
        let ranking = Ranking::identity(5);
        let mut scratch = PlantScratch::new(5);
        let common = CommonLabelTable::empty(5);
        let tree = plant_dijkstra(&g, &ranking, 1, false, &common, &mut scratch);
        let mut labeled: Vec<(VertexId, Distance)> = tree.labels.clone();
        labeled.sort_unstable();
        assert_eq!(labeled, vec![(1, 0), (2, 10)]);
        // PLaNT explores more of the graph than PLL would have.
        assert!(tree.vertices_explored >= 4);
    }

    #[test]
    fn tie_breaking_prefers_higher_ranked_ancestor() {
        // Two equal-length paths 0-1-3 and 0-2-3 (weights 1+1); vertex 1 is
        // more important than the root but vertex 2 is not. The ancestor of 3
        // must become vertex 1, so no label (root, ·) is emitted at 3.
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build().unwrap();
        // Importance: 1 > 0 > 2 > 3.
        let ranking = Ranking::from_order(vec![1, 0, 2, 3], 4).unwrap();
        let mut scratch = PlantScratch::new(4);
        let common = CommonLabelTable::empty(4);
        let tree = plant_dijkstra(&g, &ranking, 0, false, &common, &mut scratch);
        let labeled: Vec<VertexId> = tree.labels.iter().map(|&(v, _)| v).collect();
        assert!(labeled.contains(&0));
        assert!(labeled.contains(&2));
        assert!(!labeled.contains(&1), "vertex 1 outranks the root");
        assert!(
            !labeled.contains(&3),
            "vertex 3 is covered by the more important vertex 1"
        );
    }

    #[test]
    fn plant_labeling_equals_sequential_pll() {
        let g = erdos_renyi(70, 0.08, 16, 19);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let planted =
            plant_labeling(&g, &ranking, &LabelingConfig::default().with_threads(4)).index;
        assert_eq!(canonical, planted);
    }

    #[test]
    fn plant_labeling_equals_pll_on_road_like_graph() {
        let g = grid_network(
            &GridOptions {
                rows: 9,
                cols: 7,
                ..GridOptions::default()
            },
            29,
        );
        let ranking = chl_ranking::betweenness_ranking(
            &g,
            &chl_ranking::BetweennessOptions {
                samples: 16,
                degree_tiebreak: true,
            },
            5,
        );
        let canonical = sequential_pll(&g, &ranking).index;
        let planted =
            plant_labeling(&g, &ranking, &LabelingConfig::default().with_threads(8)).index;
        assert_eq!(canonical, planted);
    }

    #[test]
    fn early_termination_preserves_output() {
        let g = barabasi_albert(150, 3, 77);
        let ranking = degree_ranking(&g);
        let with_et = plant_labeling(
            &g,
            &ranking,
            &LabelingConfig {
                early_termination: true,
                ..LabelingConfig::default().with_threads(4)
            },
        );
        let without_et = plant_labeling(
            &g,
            &ranking,
            &LabelingConfig {
                early_termination: false,
                ..LabelingConfig::default().with_threads(4)
            },
        );
        assert_eq!(with_et.index, without_et.index);
        // Early termination can only reduce exploration.
        assert!(
            with_et.stats.total_vertices_explored() <= without_et.stats.total_vertices_explored()
        );
    }

    #[test]
    fn common_label_pruning_preserves_output_and_cuts_exploration() {
        let g = barabasi_albert(150, 3, 51);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let eta = 16u32;
        let common = CommonLabelTable::from_labels(&canonical.clone().into_label_sets(), eta);

        let n = g.num_vertices();
        let table = ConcurrentLabelTable::new(n);
        let mut scratch = PlantScratch::new(n);
        let mut explored_pruned = 0usize;
        for pos in 0..n as u32 {
            let root = ranking.vertex_at(pos);
            let tree = plant_dijkstra(&g, &ranking, root, true, &common, &mut scratch);
            explored_pruned += tree.vertices_explored;
            for &(v, d) in &tree.labels {
                table.append(v, LabelEntry::new(pos, d));
            }
        }
        let pruned_index = HubLabelIndex::new(table.into_label_sets(), ranking.clone()).unwrap();
        assert_eq!(pruned_index, canonical);

        // Re-run without the table to compare exploration volume.
        let empty = CommonLabelTable::empty(n);
        let mut explored_plain = 0usize;
        for pos in 0..n as u32 {
            let root = ranking.vertex_at(pos);
            let tree = plant_dijkstra(&g, &ranking, root, true, &empty, &mut scratch);
            explored_plain += tree.vertices_explored;
        }
        assert!(explored_pruned <= explored_plain);
    }

    #[test]
    fn psi_grows_for_low_ranked_roots_on_scale_free_graphs() {
        // Figure 3's qualitative claim: later (less important) SPTs explore
        // many vertices per label generated. Early termination is disabled so
        // the exploration counts reflect the raw tree sizes.
        let g = barabasi_albert(200, 3, 13);
        let ranking = degree_ranking(&g);
        let config = LabelingConfig {
            early_termination: false,
            ..LabelingConfig::default().with_threads(2)
        };
        let result = plant_labeling(&g, &ranking, &config);
        let psi = result.stats.psi_per_spt();
        let early: f64 = psi[..10]
            .iter()
            .map(|&(_, p)| p)
            .filter(|p| p.is_finite())
            .sum::<f64>()
            / 10.0;
        let late: Vec<f64> = psi[psi.len() - 20..]
            .iter()
            .map(|&(_, p)| p)
            .filter(|p| p.is_finite())
            .collect();
        let late_avg = late.iter().sum::<f64>() / late.len().max(1) as f64;
        assert!(
            late_avg > early,
            "expected later SPTs to explore more per label (early {early}, late {late_avg})"
        );
    }

    #[test]
    fn disconnected_graph_gets_per_component_labels() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 2);
        let g = b.build().unwrap();
        let ranking = Ranking::identity(4);
        let result = plant_labeling(&g, &ranking, &LabelingConfig::default().with_threads(2));
        assert_eq!(result.index.query(0, 1), 2);
        assert_eq!(result.index.query(1, 3), chl_graph::types::INFINITY);
    }

    #[test]
    fn common_table_bookkeeping() {
        let labels = vec![
            LabelSet::from_entries(vec![LabelEntry::new(0, 1), LabelEntry::new(20, 2)]),
            LabelSet::from_entries(vec![LabelEntry::new(3, 4)]),
        ];
        let t = CommonLabelTable::from_labels(&labels, 16);
        assert_eq!(t.eta(), 16);
        assert_eq!(t.total_labels(), 2);
        assert!(t.memory_bytes() > 0);
        assert!(t.labels_of(0).contains_hub(0));
        assert!(!t.labels_of(0).contains_hub(20));

        let mut t = CommonLabelTable::with_eta(2, 8);
        t.insert(1, LabelEntry::new(2, 9));
        assert_eq!(t.labels_of(1).distance_to_hub(2), Some(9));
    }
}
