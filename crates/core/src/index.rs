//! The queryable hub-label index: every vertex's label set plus the ranking
//! that gives hubs their meaning.

use serde::{Deserialize, Serialize};

use chl_graph::types::{Distance, VertexId};
use chl_ranking::Ranking;

use crate::error::LabelingError;
use crate::labels::{LabelEntry, LabelSet};
use crate::stats::ConstructionStats;

/// A complete hub labeling of a graph, ready to answer PPSD queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HubLabelIndex {
    labels: Vec<LabelSet>,
    ranking: Ranking,
}

/// What a labeling constructor returns: the index plus construction-time
/// statistics (timings, per-SPT label counts, Ψ traces, ...).
#[derive(Debug, Clone)]
pub struct LabelingResult {
    /// The constructed hub labeling.
    pub index: HubLabelIndex,
    /// Instrumentation collected while constructing it.
    pub stats: ConstructionStats,
}

impl HubLabelIndex {
    /// Creates an index from per-vertex label sets (indexed by vertex id) and
    /// the ranking whose positions the labels refer to.
    ///
    /// The shape check runs in release builds too: an index whose label-set
    /// count disagrees with its ranking corrupts every query that touches the
    /// missing tail, so the mismatch is an error, not a debug assertion.
    pub fn new(labels: Vec<LabelSet>, ranking: Ranking) -> Result<Self, LabelingError> {
        if labels.len() != ranking.len() {
            return Err(LabelingError::LabelShapeMismatch {
                label_sets: labels.len(),
                ranking_vertices: ranking.len(),
            });
        }
        Ok(HubLabelIndex { labels, ranking })
    }

    /// Creates an empty index (no labels at all) for `ranking`.
    pub fn empty(ranking: Ranking) -> Self {
        let labels = vec![LabelSet::new(); ranking.len()];
        HubLabelIndex { labels, ranking }
    }

    /// Number of vertices covered by the index.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The ranking the labeling respects.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// Label set of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v >= num_vertices()`; use [`Self::try_labels_of`] for
    /// ids that may come from untrusted input.
    pub fn labels_of(&self, v: VertexId) -> &LabelSet {
        &self.labels[v as usize]
    }

    /// Label set of vertex `v`, or `None` when `v` is out of range.
    pub fn try_labels_of(&self, v: VertexId) -> Option<&LabelSet> {
        self.labels.get(v as usize)
    }

    /// Mutable label set of vertex `v` (used by the cleaning pass).
    pub fn labels_of_mut(&mut self, v: VertexId) -> &mut LabelSet {
        &mut self.labels[v as usize]
    }

    /// Consumes the index, returning the raw per-vertex label sets.
    pub fn into_label_sets(self) -> Vec<LabelSet> {
        self.labels
    }

    /// Answers a PPSD query: the exact shortest-path distance between `u` and
    /// `v`, or [`INFINITY`](chl_graph::types::INFINITY) when they are not
    /// connected. Ids outside `0..num_vertices()` name no vertex and are
    /// treated as unreachable — including `query(u, u)` for `u >= n`, which
    /// must not pretend a nonexistent vertex is at distance 0 from itself.
    pub fn query(&self, u: VertexId, v: VertexId) -> Distance {
        let (Some(lu), Some(lv)) = (self.try_labels_of(u), self.try_labels_of(v)) else {
            return chl_graph::types::INFINITY;
        };
        if u == v {
            return 0;
        }
        lu.query_distance(lv)
    }

    /// Like [`Self::query`] but also reports the hub (as a vertex id) through
    /// which the minimum distance is achieved. `None` for disconnected pairs
    /// and for out-of-range ids.
    pub fn query_with_hub(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Distance)> {
        let (lu, lv) = (self.try_labels_of(u)?, self.try_labels_of(v)?);
        if u == v {
            return Some((u, 0));
        }
        lu.query_join(lv)
            .map(|(hub_pos, d)| (self.ranking.vertex_at(hub_pos), d))
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        self.labels.iter().map(LabelSet::len).sum()
    }

    /// Average label size per vertex (ALS), the paper's headline quality
    /// metric (Table 3).
    pub fn average_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_labels() as f64 / self.labels.len() as f64
        }
    }

    /// Maximum label-set size over all vertices.
    pub fn max_label_size(&self) -> usize {
        self.labels.iter().map(LabelSet::len).max().unwrap_or(0)
    }

    /// Approximate heap memory consumed by the label sets, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.labels.iter().map(LabelSet::memory_bytes).sum()
    }

    /// Per-hub label counts: for each rank position, how many labels name it
    /// as the hub. This is the "labels generated per SPT" series of Figure 2.
    pub fn labels_per_hub(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ranking.len()];
        for set in &self.labels {
            for e in set.entries() {
                counts[e.hub as usize] += 1;
            }
        }
        counts
    }

    /// Builds an index from labels expressed as `(vertex, hub vertex id,
    /// distance)` triples; mainly a convenience for tests and for assembling
    /// distributed partitions.
    pub fn from_triples(
        triples: impl IntoIterator<Item = (VertexId, VertexId, Distance)>,
        ranking: Ranking,
    ) -> Self {
        let mut per_vertex: Vec<Vec<LabelEntry>> = vec![Vec::new(); ranking.len()];
        for (v, hub, dist) in triples {
            per_vertex[v as usize].push(LabelEntry::new(ranking.position(hub), dist));
        }
        let labels = per_vertex.into_iter().map(LabelSet::from_entries).collect();
        HubLabelIndex { labels, ranking }
    }

    /// Merges the label sets of `other` into `self` (per-vertex union, keeping
    /// the minimum distance per hub). Both indexes must share the same
    /// ranking; used to reassemble distributed label partitions.
    ///
    /// The compatibility check runs in release builds too: partitions built
    /// over different rankings interpret hub positions differently, so a
    /// silent union would corrupt the index. `self` is untouched on error.
    pub fn merge(&mut self, other: &HubLabelIndex) -> Result<(), LabelingError> {
        if self.ranking != other.ranking {
            return Err(LabelingError::MergeRankingMismatch {
                left_vertices: self.ranking.len(),
                right_vertices: other.ranking.len(),
            });
        }
        for (mine, theirs) in self.labels.iter_mut().zip(other.labels.iter()) {
            mine.merge(theirs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::types::INFINITY;

    fn tiny_index() -> HubLabelIndex {
        // Path 0 - 1 - 2 with unit weights, ranking 1 > 0 > 2 (vertex 1 most
        // important). Canonical labels:
        //   L_0 = {(0,0), (1,1)}   L_1 = {(1,0)}   L_2 = {(1,1), (2,0)}
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        )
    }

    #[test]
    fn query_answers_exact_distances() {
        let idx = tiny_index();
        assert_eq!(idx.query(0, 2), 2);
        assert_eq!(idx.query(0, 1), 1);
        assert_eq!(idx.query(2, 1), 1);
        assert_eq!(idx.query(1, 1), 0);
    }

    #[test]
    fn query_with_hub_reports_vertex_id() {
        let idx = tiny_index();
        let (hub, d) = idx.query_with_hub(0, 2).unwrap();
        assert_eq!(hub, 1);
        assert_eq!(d, 2);
        assert_eq!(idx.query_with_hub(2, 2), Some((2, 0)));
    }

    #[test]
    fn disconnected_vertices_report_infinity() {
        let ranking = Ranking::identity(3);
        let idx = HubLabelIndex::from_triples(vec![(0, 0, 0), (1, 1, 0), (2, 2, 0)], ranking);
        assert_eq!(idx.query(0, 2), INFINITY);
        assert_eq!(idx.query_with_hub(0, 2), None);
    }

    #[test]
    fn size_statistics() {
        let idx = tiny_index();
        assert_eq!(idx.total_labels(), 5);
        assert!((idx.average_label_size() - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(idx.max_label_size(), 2);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.num_vertices(), 3);
    }

    #[test]
    fn labels_per_hub_counts_by_rank_position() {
        let idx = tiny_index();
        // Rank position 0 is vertex 1, which hubs three labels.
        assert_eq!(idx.labels_per_hub(), vec![3, 1, 1]);
    }

    #[test]
    fn merge_unions_label_sets() {
        let ranking = Ranking::identity(2);
        let mut a = HubLabelIndex::from_triples(vec![(0, 0, 0)], ranking.clone());
        let b = HubLabelIndex::from_triples(vec![(1, 0, 4), (1, 1, 0)], ranking);
        a.merge(&b).unwrap();
        assert_eq!(a.total_labels(), 3);
        assert_eq!(a.query(0, 1), 4);
    }

    #[test]
    fn new_rejects_mismatched_shapes_in_release_builds() {
        let err = HubLabelIndex::new(vec![LabelSet::new(); 2], Ranking::identity(3)).unwrap_err();
        assert!(matches!(
            err,
            crate::error::LabelingError::LabelShapeMismatch {
                label_sets: 2,
                ranking_vertices: 3
            }
        ));
        assert!(HubLabelIndex::new(vec![LabelSet::new(); 3], Ranking::identity(3)).is_ok());
    }

    #[test]
    fn merge_rejects_incompatible_rankings() {
        // Different sizes.
        let mut a = HubLabelIndex::empty(Ranking::identity(2));
        let b = HubLabelIndex::empty(Ranking::identity(3));
        assert!(a.merge(&b).is_err());
        // Same size, different order: positions mean different hubs.
        let mut c = HubLabelIndex::from_triples(vec![(0, 0, 0)], Ranking::identity(2));
        let d = HubLabelIndex::from_triples(
            vec![(0, 0, 0)],
            Ranking::from_order(vec![1, 0], 2).unwrap(),
        );
        let before = c.clone();
        assert!(c.merge(&d).is_err());
        assert_eq!(
            c, before,
            "failed merge must leave the destination untouched"
        );
    }

    #[test]
    fn out_of_range_ids_are_unreachable_not_a_panic() {
        let idx = tiny_index(); // 3 vertices
        for &(u, v) in &[(0, 3), (3, 0), (3, 3), (7, 9), (u32::MAX, 0)] {
            assert_eq!(idx.query(u, v), INFINITY, "({u}, {v})");
            assert_eq!(idx.query_with_hub(u, v), None, "({u}, {v})");
        }
        // In particular a self-query on a nonexistent vertex is NOT 0.
        assert_eq!(idx.query(3, 3), INFINITY);
        assert!(idx.try_labels_of(2).is_some());
        assert!(idx.try_labels_of(3).is_none());
    }

    #[test]
    fn empty_index_has_no_labels() {
        let idx = HubLabelIndex::empty(Ranking::identity(4));
        assert_eq!(idx.total_labels(), 0);
        assert_eq!(idx.average_label_size(), 0.0);
        assert_eq!(idx.query(1, 2), INFINITY);
        assert_eq!(idx.query(3, 3), 0);
    }
}
