//! # chl-core
//!
//! Shared-memory Canonical Hub Labeling (CHL) construction and querying —
//! the core contribution of *"Planting Trees for scalable and efficient
//! Canonical Hub Labeling"* (Lakhotia et al., VLDB 2019).
//!
//! Given a positively weighted graph and a network hierarchy (a
//! [`chl_ranking::Ranking`]), the constructors in this crate produce the
//! canonical hub labeling: the unique minimal labeling that respects the
//! hierarchy and covers every connected pair. A point-to-point shortest
//! distance (PPSD) query then reduces to intersecting two small sorted label
//! sets.
//!
//! ## The unified API
//!
//! All construction goes through one entry point, [`api::ChlBuilder`], which
//! dispatches over the [`api::Algorithm`] enum via the object-safe
//! [`api::Labeler`] trait; all querying goes through the
//! [`oracle::DistanceOracle`] trait, implemented by [`HubLabelIndex`] here
//! and by the distributed partitions and serving engines elsewhere in the
//! workspace. Constructors and query backends can therefore be swapped
//! without touching call sites.
//!
//! ```
//! use chl_graph::generators::{grid_network, GridOptions};
//! use chl_core::api::{Algorithm, ChlBuilder, RankingStrategy};
//! use chl_core::oracle::DistanceOracle;
//!
//! let g = grid_network(&GridOptions { rows: 8, cols: 8, ..GridOptions::default() }, 7);
//! let result = ChlBuilder::new(&g)
//!     .ranking(RankingStrategy::Degree)
//!     .algorithm(Algorithm::Hybrid)
//!     .threads(2)
//!     .validate()
//!     .expect("configuration is valid")
//!     .build()
//!     .expect("construction succeeds");
//!
//! // Hub labels answer exact shortest-path distance queries — through the
//! // index directly or through any `&dyn DistanceOracle`.
//! let oracle: &dyn DistanceOracle = &result.index;
//! assert_eq!(oracle.distance(0, 63), chl_graph::sssp::dijkstra(&g, 0)[63]);
//! ```
//!
//! ## Constructors
//!
//! Every [`api::Algorithm`] variant maps to one constructor module and one
//! paper section:
//!
//! | [`api::Algorithm`] | Module entry point | Paper section | Parallel? | Notes |
//! |---|---|---|---|---|
//! | `Pll` | [`pll::sequential_pll`] | §1 (baseline, Akiba et al.) | no | reference CHL constructor |
//! | `SParaPll` | [`para_pll::spara_pll`] | §3 (baseline, Qiu et al.) | yes | no rank queries ⇒ larger, non-canonical labeling |
//! | `Lcc` | [`lcc::lcc`] | §4.1, Alg. 2 | yes | construction + full cleaning ⇒ CHL |
//! | `Gll` | [`gll::gll`] | §4.2 | yes | superstep global/local tables ⇒ CHL, cheaper cleaning |
//! | `Plant` | [`plant::plant_labeling`] | §5.2, Alg. 3 | yes | embarrassingly parallel, no pruning queries ⇒ CHL |
//! | `Hybrid` | [`hybrid::shared_hybrid`] | §5.2.1 (shared-memory variant) | yes | PLaNT for the label-heavy prefix, GLL for the tail |
//!
//! The per-module free functions remain as thin, panicking wrappers over the
//! corresponding [`api::Labeler`] so pre-builder call sites keep compiling;
//! new code should use the builder, which reports invalid input as
//! [`LabelingError`] instead.
//!
//! All constructors return the same canonical labeling for a given ranking
//! (except `SParaPll`, whose whole point is that it does not); the
//! [`canonical`] module contains a brute-force reference and property
//! checkers used heavily by the test-suite.
//!
//! ## Persistence: build once, serve forever
//!
//! Construction is the expensive phase and querying the latency-critical one
//! (§6), so the two are decoupled by a durable index: [`flat::FlatIndex`]
//! stores every label set in two contiguous CSR-style arrays (the serving
//! layout), and [`persist`] defines the versioned, checksummed `.chl` file
//! format it saves to and loads from. Since format v2 the on-disk layout is
//! byte-identical to the in-memory one (8-byte-aligned sections), so serving
//! does not even need the copy: [`persist::view_bytes`] borrows a
//! [`flat::FlatView`] — the ownership-agnostic query kernel — straight from
//! a validated buffer, and [`mapped::MmapIndex`] serves a file through that
//! view from the OS page cache. The lifecycle is
//!
//! ```text
//! ChlBuilder::build -> HubLabelIndex -> FlatIndex::from_index -> save(path)
//!                                 ...any process, any time later...
//! FlatIndex::load(path)  -> &dyn DistanceOracle   (owned, copying)
//! MmapIndex::open(path)  -> &dyn DistanceOracle   (borrowed, zero-copy)
//! ```
//!
//! The entries section of a v2 file additionally supports a delta+varint
//! **compressed encoding** (`chl build --compress` /
//! [`persist::SaveOptions`]): labels are hub-sorted so hub gaps are small,
//! and one label typically costs 2–4 bytes on disk instead of 16. The query
//! kernel is generic over the storage ([`flat::LabelStorage`]), so
//! compressed files serve through exactly the same merge-join — decoded
//! into a [`flat::FlatIndex`] on load, or streamed straight out of the
//! mapped bytes ([`flat::IndexView`]) under `--mmap`.
//!
//! Conversion between the layouts is lossless, every corruption mode
//! (truncation, bit flips, wrong magic/version) loads as a typed
//! [`PersistError`], and the `chl` CLI (`crates/cli`) drives the same
//! lifecycle from the shell (`chl query --mmap` for the zero-copy path).

// The unsafe surface of this crate lives in persist.rs/mapped.rs (byte
// reinterpretation and mmap) and kernel.rs (SIMD intrinsics and
// bounds-elided loads), and every unsafe operation must sit in an explicit
// `unsafe {}` block with its own `// SAFETY:` argument — even inside
// `unsafe fn`s (enforced by `chl-lint check`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod canonical;
pub mod cleaning;
pub mod config;
pub mod error;
pub mod flat;
pub mod gll;
pub mod hybrid;
pub mod index;
pub mod kernel;
pub mod labels;
pub mod lcc;
pub mod mapped;
pub mod oracle;
pub mod para_pll;
pub mod paths;
pub mod persist;
pub mod plant;
pub mod pll;
pub mod pruned_dijkstra;
pub mod stats;
pub mod table;

pub use api::{Algorithm, ChlBuilder, Labeler, RankingStrategy};
pub use config::LabelingConfig;
pub use error::LabelingError;
pub use flat::{FlatIndex, FlatView, IndexView, LabelStorage, LabelView};
pub use index::{HubLabelIndex, LabelingResult};
pub use kernel::{HotHubCache, HotHubCached};
pub use labels::{LabelEntry, LabelSet};
pub use mapped::MmapIndex;
pub use oracle::DistanceOracle;
pub use paths::{compute_parents, PathError, PathOracle};
pub use persist::{PersistError, SaveOptions};
pub use stats::ConstructionStats;
