//! # chl-core
//!
//! Shared-memory Canonical Hub Labeling (CHL) construction and querying —
//! the core contribution of *"Planting Trees for scalable and efficient
//! Canonical Hub Labeling"* (Lakhotia et al., VLDB 2019).
//!
//! Given a positively weighted graph and a network hierarchy (a
//! [`chl_ranking::Ranking`]), the constructors in this crate produce the
//! canonical hub labeling: the unique minimal labeling that respects the
//! hierarchy and covers every connected pair. A point-to-point shortest
//! distance (PPSD) query then reduces to intersecting two small sorted label
//! sets.
//!
//! ## Constructors
//!
//! | Function | Paper section | Parallel? | Notes |
//! |---|---|---|---|
//! | [`pll::sequential_pll`] | §1 (baseline, Akiba et al.) | no | reference CHL constructor |
//! | [`para_pll::spara_pll`] | §3 (baseline, Qiu et al.) | yes | no rank queries ⇒ larger, non-canonical labeling |
//! | [`lcc::lcc`] | §4.1, Alg. 2 | yes | construction + full cleaning ⇒ CHL |
//! | [`gll::gll`] | §4.2 | yes | superstep global/local tables ⇒ CHL, cheaper cleaning |
//! | [`plant::plant_labeling`] | §5.2, Alg. 3 | yes | embarrassingly parallel, no pruning queries ⇒ CHL |
//! | [`hybrid::shared_hybrid`] | §5.2.1 (shared-memory variant) | yes | PLaNT for the label-heavy prefix, GLL for the tail |
//!
//! All constructors return the same canonical labeling for a given ranking
//! (except `spara_pll`, whose whole point is that it does not); the
//! [`canonical`] module contains a brute-force reference and property
//! checkers used heavily by the test-suite.
//!
//! ## Example
//!
//! ```
//! use chl_graph::generators::{grid_network, GridOptions};
//! use chl_ranking::degree_ranking;
//! use chl_core::{gll::gll, config::LabelingConfig};
//!
//! let g = grid_network(&GridOptions { rows: 8, cols: 8, ..GridOptions::default() }, 7);
//! let ranking = degree_ranking(&g);
//! let result = gll(&g, &ranking, &LabelingConfig::default());
//! let index = result.index;
//!
//! // Hub labels answer exact shortest-path distance queries.
//! let d = index.query(0, 63);
//! assert_eq!(d, chl_graph::sssp::dijkstra(&g, 0)[63]);
//! ```

pub mod canonical;
pub mod cleaning;
pub mod config;
pub mod error;
pub mod gll;
pub mod hybrid;
pub mod index;
pub mod labels;
pub mod lcc;
pub mod para_pll;
pub mod plant;
pub mod pll;
pub mod pruned_dijkstra;
pub mod stats;
pub mod table;

pub use config::LabelingConfig;
pub use error::LabelingError;
pub use index::{HubLabelIndex, LabelingResult};
pub use labels::{LabelEntry, LabelSet};
pub use stats::ConstructionStats;
