//! Configuration knobs shared by the labeling constructors.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the shared-memory constructors. Field names follow
/// the paper's notation where one exists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelingConfig {
    /// Number of worker threads (`p` in the paper). `0` means "use all
    /// available parallelism".
    pub num_threads: usize,
    /// GLL synchronization threshold `α`: a superstep's label construction
    /// phase ends once the local table holds more than `α · n` labels. The
    /// paper settles on `α = 4` (Figure 5).
    pub alpha: f64,
    /// Hybrid switching threshold `Ψ_th`: once the running ratio of vertices
    /// explored per label generated exceeds this value, the Hybrid
    /// constructor stops PLaNTing trees and switches to pruned construction.
    /// The paper uses 100 for scale-free and 500 for road networks (Figure 6).
    pub psi_threshold: f64,
    /// Number of SPTs over which Ψ is averaged before the Hybrid switch
    /// decision is made.
    pub psi_window: usize,
    /// Enable PLaNT's early-termination optimization (§5.2).
    pub early_termination: bool,
    /// Number of top-ranked hubs whose labels form the Common Label Table
    /// (`η` in §5.3). Used by PLaNT-with-pruning and the distributed hybrid.
    pub common_hubs: usize,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            num_threads: 0,
            alpha: 4.0,
            psi_threshold: 100.0,
            psi_window: 64,
            early_termination: true,
            common_hubs: 16,
        }
    }
}

impl LabelingConfig {
    /// Resolves `num_threads == 0` to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }

    /// Builder-style helper: sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    /// Builder-style helper: sets the GLL synchronization threshold `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style helper: sets the Hybrid switching threshold `Ψ_th`.
    pub fn with_psi_threshold(mut self, psi: f64) -> Self {
        self.psi_threshold = psi;
        self
    }

    /// Builder-style helper: sets the Common Label Table size `η`.
    pub fn with_common_hubs(mut self, eta: usize) -> Self {
        self.common_hubs = eta;
        self
    }

    /// Validates the configuration, returning a human-readable complaint for
    /// out-of-range values.
    pub fn validate(&self) -> Result<(), crate::error::LabelingError> {
        if self.alpha < 1.0 {
            return Err(crate::error::LabelingError::InvalidConfig(format!(
                "alpha must be >= 1.0, got {}",
                self.alpha
            )));
        }
        if self.psi_threshold <= 0.0 {
            return Err(crate::error::LabelingError::InvalidConfig(format!(
                "psi_threshold must be positive, got {}",
                self.psi_threshold
            )));
        }
        if self.psi_window == 0 {
            return Err(crate::error::LabelingError::InvalidConfig(
                "psi_window must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = LabelingConfig::default();
        assert_eq!(c.alpha, 4.0);
        assert_eq!(c.common_hubs, 16);
        assert!(c.early_termination);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        let c = LabelingConfig::default();
        assert!(c.effective_threads() >= 1);
        assert_eq!(c.with_threads(3).effective_threads(), 3);
    }

    #[test]
    fn builders_set_fields() {
        let c = LabelingConfig::default()
            .with_alpha(8.0)
            .with_psi_threshold(500.0)
            .with_common_hubs(32)
            .with_threads(2);
        assert_eq!(c.alpha, 8.0);
        assert_eq!(c.psi_threshold, 500.0);
        assert_eq!(c.common_hubs, 32);
        assert_eq!(c.num_threads, 2);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(LabelingConfig::default()
            .with_alpha(0.5)
            .validate()
            .is_err());
        assert!(LabelingConfig::default()
            .with_psi_threshold(0.0)
            .validate()
            .is_err());
        let c = LabelingConfig {
            psi_window: 0,
            ..LabelingConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
