//! GLL — Global Local Labeling (§4.2 of the paper).
//!
//! GLL keeps LCC's optimistic construction but splits the labeling into a
//! **global table** (labels committed at earlier synchronization points,
//! already cleaned, read without locks) and a **local table** (labels of the
//! current superstep, guarded by per-vertex mutexes). A superstep ends once
//! the local table holds more than `α·n` labels; the threads then synchronize,
//! clean *only the local labels* (everything in the global table was already
//! consulted during construction and cannot be redundant with respect to it),
//! commit the survivors to the global table and start the next superstep.
//!
//! Compared to LCC this bounds the label sets each cleaning query walks and
//! drastically reduces locking during pruning queries — the two effects the
//! paper credits for GLL's speedup over LCC (Figure 7).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use chl_graph::CsrGraph;
use chl_ranking::Ranking;
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::config::LabelingConfig;
use crate::index::{HubLabelIndex, LabelingResult};
use crate::labels::{LabelEntry, LabelSet};
use crate::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use crate::stats::ConstructionStats;
use crate::table::{ConcurrentLabelTable, GllTables};

/// Runs GLL and returns the Canonical Hub Labeling.
///
/// Thin wrapper over [`crate::api::GllLabeler`]; panics on invalid inputs.
/// Prefer [`crate::api::ChlBuilder`] in new code.
pub fn gll(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::GllLabeler
        .build(g, ranking, config)
        .unwrap_or_else(|e| panic!("gll: {e}"))
}

pub(crate) fn gll_impl(g: &CsrGraph, ranking: &Ranking, config: &LabelingConfig) -> LabelingResult {
    let n = g.num_vertices();
    gll_from_state(g, ranking, config, vec![LabelSet::new(); n], 0)
}

/// Runs GLL starting from pre-existing committed labels (`initial_global`,
/// one set per vertex) and from rank position `start_position` onwards.
///
/// This is the continuation entry point used by the Hybrid constructors: the
/// PLaNT phase produces canonical labels for the most important roots, which
/// become GLL's initial global table, and pruned construction resumes at the
/// first un-PLaNTed root.
pub fn gll_from_state(
    g: &CsrGraph,
    ranking: &Ranking,
    config: &LabelingConfig,
    initial_global: Vec<LabelSet>,
    start_position: u32,
) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let threads = config.effective_threads().max(1);
    let mut stats = ConstructionStats::new("GLL");
    stats.threads = threads;
    stats.supersteps = 0;

    debug_assert_eq!(initial_global.len(), n);
    let mut global: Vec<LabelSet> = initial_global;
    let next_root = AtomicU32::new(start_position);
    let superstep_threshold = (config.alpha.max(1.0) * n as f64) as usize;

    let mut construction_time = Duration::ZERO;
    let mut cleaning_time = Duration::ZERO;
    let mut labels_generated_total = 0usize;

    // The cleaning/commit phases below are rayon-parallel; pin them to the
    // configured thread count so `--threads 1` caps the whole build, not
    // just the construction scope.
    let clean_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");

    // ORDERING: read between supersteps, after the worker scope has joined —
    // the join is the synchronization point, so Relaxed is enough here.
    while (next_root.load(Ordering::Relaxed) as usize) < n {
        stats.supersteps += 1;
        let local = ConcurrentLabelTable::new(n);
        let superstep_labels = AtomicUsize::new(0);
        let records = Mutex::new(Vec::new());
        let queries = Mutex::new(0usize);

        // --- Label construction until the local table exceeds α·n labels ---
        let phase_start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = DijkstraScratch::new(n);
                    let tables = GllTables {
                        global: &global,
                        local: &local,
                    };
                    let opts = PruneOptions {
                        rank_query: true,
                        ..Default::default()
                    };
                    let mut local_records = Vec::new();
                    let mut local_queries = 0usize;
                    loop {
                        // ORDERING: advisory superstep cutoff — a slightly
                        // stale read only shifts where a worker stops, never
                        // correctness; Relaxed suffices.
                        if superstep_labels.load(Ordering::Relaxed) > superstep_threshold {
                            break;
                        }
                        // ORDERING: root claiming — the fetch_add's RMW
                        // atomicity alone makes positions unique; label data
                        // is published via the table's own locks and the
                        // scope join, not through this counter.
                        let pos = next_root.fetch_add(1, Ordering::Relaxed);
                        if pos as usize >= n {
                            break;
                        }
                        let root = ranking.vertex_at(pos);
                        let (record, q) =
                            pruned_dijkstra(g, ranking, root, &tables, opts, &mut scratch);
                        // ORDERING: advisory counter feeding the cutoff
                        // above; no other memory is published through it.
                        superstep_labels.fetch_add(record.labels_generated, Ordering::Relaxed);
                        local_records.push(record);
                        local_queries += q;
                    }
                    records.lock().extend(local_records);
                    *queries.lock() += local_queries;
                });
            }
        });
        construction_time += phase_start.elapsed();
        stats.spt_records.extend(records.into_inner());
        stats.distance_queries += queries.into_inner();

        // --- Interleaved cleaning of the local table only ---
        let clean_start = Instant::now();
        let local_entries = local.drain_all();
        labels_generated_total += local_entries.iter().map(Vec::len).sum::<usize>();

        clean_pool.install(|| {
            // Combined view of each vertex's labels (global ∪ local), needed
            // both as L_v and as L_h by the cleaning queries.
            let combined: Vec<LabelSet> = global
                .par_iter()
                .zip(local_entries.par_iter())
                .map(|(global_set, local_raw)| {
                    let mut set = global_set.clone();
                    set.merge(&LabelSet::from_entries(local_raw.clone()));
                    set
                })
                .collect();

            let survivors: Vec<Vec<LabelEntry>> = local_entries
                .par_iter()
                .enumerate()
                .map(|(v, raw)| {
                    raw.iter()
                        .copied()
                        .filter(|e| {
                            let hub_vertex = ranking.vertex_at(e.hub);
                            if hub_vertex == v as u32 {
                                return true;
                            }
                            !combined[v].is_redundant_label(
                                e.hub,
                                e.dist,
                                &combined[hub_vertex as usize],
                            )
                        })
                        .collect()
                })
                .collect();

            // Commit survivors to the global table.
            global
                .par_iter_mut()
                .zip(survivors.into_par_iter())
                .for_each(|(global_set, kept)| {
                    if !kept.is_empty() {
                        global_set.merge(&LabelSet::from_entries(kept));
                    }
                });
        });
        cleaning_time += clean_start.elapsed();
    }

    let index = HubLabelIndex::new(global, ranking.clone())
        .expect("constructor produced one label set per vertex");
    stats.construction_time = construction_time;
    stats.cleaning_time = cleaning_time;
    stats.total_time = start.elapsed();
    stats.labels_before_cleaning = labels_generated_total;
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::sequential_pll;
    use chl_graph::generators::{barabasi_albert, erdos_renyi, grid_network, GridOptions};
    use chl_graph::sssp::dijkstra;
    use chl_ranking::degree_ranking;

    #[test]
    fn gll_produces_the_canonical_labeling() {
        let g = erdos_renyi(80, 0.07, 16, 23);
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let parallel = gll(&g, &ranking, &LabelingConfig::default().with_threads(4)).index;
        assert_eq!(canonical, parallel);
    }

    #[test]
    fn gll_matches_pll_on_grid_with_small_alpha() {
        // A small α forces many supersteps, exercising the commit path.
        let g = grid_network(
            &GridOptions {
                rows: 8,
                cols: 8,
                ..GridOptions::default()
            },
            2,
        );
        let ranking = degree_ranking(&g);
        let canonical = sequential_pll(&g, &ranking).index;
        let config = LabelingConfig::default().with_threads(4).with_alpha(1.0);
        let result = gll(&g, &ranking, &config);
        assert_eq!(canonical, result.index);
        assert!(result.stats.supersteps > 1, "expected multiple supersteps");
    }

    #[test]
    fn gll_queries_match_dijkstra_on_scale_free_graph() {
        let g = barabasi_albert(180, 3, 31);
        let ranking = degree_ranking(&g);
        let result = gll(&g, &ranking, &LabelingConfig::default().with_threads(8));
        for src in [0u32, 90, 179] {
            let d = dijkstra(&g, src);
            for v in 0..180u32 {
                assert_eq!(result.index.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn gll_with_large_alpha_degenerates_to_single_superstep() {
        let g = erdos_renyi(40, 0.15, 8, 7);
        let ranking = degree_ranking(&g);
        let config = LabelingConfig::default()
            .with_threads(2)
            .with_alpha(1_000_000.0);
        let result = gll(&g, &ranking, &config);
        assert_eq!(result.stats.supersteps, 1);
        assert_eq!(result.index, sequential_pll(&g, &ranking).index);
    }

    #[test]
    fn stats_account_for_phases_and_labels() {
        let g = erdos_renyi(60, 0.08, 10, 41);
        let ranking = degree_ranking(&g);
        let result = gll(&g, &ranking, &LabelingConfig::default().with_threads(4));
        assert_eq!(result.stats.algorithm, "GLL");
        assert!(result.stats.labels_before_cleaning >= result.stats.labels_after_cleaning);
        assert_eq!(
            result.stats.labels_after_cleaning,
            result.index.total_labels()
        );
        assert_eq!(result.stats.spt_records.len(), 60);
        assert!(result.stats.supersteps >= 1);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let empty = chl_graph::GraphBuilder::new_undirected().build().unwrap();
        let r = gll(
            &empty,
            &Ranking::identity(0),
            &LabelingConfig::default().with_threads(2),
        );
        assert_eq!(r.index.total_labels(), 0);

        let mut b = chl_graph::GraphBuilder::new_undirected();
        b.ensure_vertices(1);
        let single = b.build().unwrap();
        let r = gll(
            &single,
            &Ranking::identity(1),
            &LabelingConfig::default().with_threads(2),
        );
        assert_eq!(r.index.total_labels(), 1);
        assert_eq!(r.index.query(0, 0), 0);
    }
}
