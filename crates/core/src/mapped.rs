//! Memory-mapped serving: a `.chl` v2/v3 file queried straight from the OS
//! page cache.
//!
//! [`MmapIndex`] is the third member of the serving-layout family (after the
//! owned [`FlatIndex`](crate::flat::FlatIndex) and the borrowed
//! [`FlatView`](crate::flat::FlatView)): it owns a read-only mapping of the
//! index file, validates it **once** at open — the same battery the copying
//! loader runs — and then hands out [`IndexView`]s borrowed directly from
//! the mapped bytes. Nothing
//! is deserialized and no heap copy of the payload is ever made: the kernel
//! pages label data in on demand, cold-serve cost is one validation scan
//! instead of scan + allocate + rebuild, and several processes serving the
//! same file share one physical copy of it.
//!
//! With the `mmap` feature (default) the backing is a real `mmap(2)` via the
//! vendored `memmap2` shim; without it — or when mapping the file fails at
//! runtime — the same type transparently falls back to one buffered read
//! into an 8-byte-aligned heap buffer, preserving behavior everywhere at the
//! cost of the copy. Either way the query path is the identical
//! ownership-agnostic [`LabelView`](crate::flat::LabelView) kernel: flat
//! files reinterpret their entries in place, while compressed files
//! (`FLAG_COMPRESSED_ENTRIES`) stream-decode the two label runs each query
//! intersects, directly from the mapped bytes at the compressed footprint.
//!
//! Only v2/v3 files can be mapped: the aligned layout is what makes
//! in-place reinterpretation possible. Opening a v1 file reports
//! [`PersistError::NotZeroCopy`]; load it through
//! [`FlatIndex::load`](crate::flat::FlatIndex::load) instead. A v3 shard
//! file maps like any other; its identity is cached at open
//! ([`MmapIndex::shard`]) and its views answer
//! [`IndexView::try_query`] shard-honestly.

use std::path::Path;

use chl_graph::types::{Distance, VertexId};

use crate::flat::IndexView;
use crate::oracle::DistanceOracle;
use crate::persist::{self, AlignedBytes, PersistError, ShardSpec};

/// A `.chl` v2/v3 index served zero-copy from a file mapping (or, as a
/// fallback, from one aligned buffered read of the file).
///
/// ```no_run
/// use chl_core::mapped::MmapIndex;
/// use chl_core::oracle::DistanceOracle;
///
/// let index = MmapIndex::open("graph.chl").expect("valid v2 index file");
/// let oracle: &dyn DistanceOracle = &index;
/// println!("dist = {}", oracle.distance(0, 42));
/// ```
///
/// ## File stability
///
/// The open is safe Rust, but a memory map observes external changes to its
/// file: another process truncating or rewriting the index while it serves
/// can crash queries (`SIGBUS`) or change answers. Treat published `.chl`
/// files as immutable — replace them by rename, never in place. The
/// buffered fallback has no such coupling.
#[derive(Debug)]
pub struct MmapIndex {
    backing: Backing,
    num_vertices: usize,
    num_entries: usize,
    version: u32,
    compressed: bool,
    /// Whether the file carries a path section (per-entry parent records),
    /// cached at open like the other layout parameters.
    paths: bool,
    /// Owned copy of the shard section, cached at open so per-query shard
    /// membership checks never re-walk the mapped bytes' layout.
    shard: Option<ShardSpec>,
}

#[derive(Debug)]
enum Backing {
    #[cfg(feature = "mmap")]
    Mapped(memmap2::Mmap),
    Buffered(AlignedBytes),
}

impl Backing {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(feature = "mmap")]
            Backing::Mapped(map) => map,
            Backing::Buffered(buf) => buf,
        }
    }
}

#[cfg(feature = "mmap")]
fn open_backing(path: &Path) -> Result<Backing, PersistError> {
    let file = std::fs::File::open(path)?;
    // SAFETY: the mapping is read-only; the documented contract of
    // MmapIndex (files are replaced by rename, not mutated in place) is
    // exactly the stability requirement Mmap::map states.
    match unsafe { memmap2::Mmap::map(&file) } {
        Ok(map) => Ok(Backing::Mapped(map)),
        // Filesystems without mmap support (some network/FUSE mounts):
        // degrade to the buffered read rather than failing the open.
        Err(_) => Ok(Backing::Buffered(persist::read_aligned(path)?)),
    }
}

#[cfg(not(feature = "mmap"))]
fn open_backing(path: &Path) -> Result<Backing, PersistError> {
    Ok(Backing::Buffered(persist::read_aligned(path)?))
}

impl MmapIndex {
    /// Opens and fully validates a `.chl` v2 file for zero-copy serving.
    ///
    /// Validation is identical to the copying loader's (length, per-section
    /// checksums, padding, semantic invariants) and runs exactly once;
    /// subsequent [`MmapIndex::view`] calls are a pointer cast. Every
    /// corruption mode is a typed [`PersistError`]; v1 files report
    /// [`PersistError::NotZeroCopy`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let backing = open_backing(path.as_ref())?;
        let version = persist::parse_header(backing.as_slice())?.version;
        let view = persist::open_view(backing.as_slice())?;
        let (num_vertices, num_entries) = (view.num_vertices(), view.total_labels());
        let compressed = view.is_compressed();
        let paths = view.has_path_data();
        let shard = view.shard().map(|s| s.to_spec());
        Ok(MmapIndex {
            backing,
            num_vertices,
            num_entries,
            version,
            compressed,
            paths,
            shard,
        })
    }

    /// The borrowed query kernel over the mapped bytes. Cheap enough to call
    /// per query: reconstructing the view is a few pointer casts, with all
    /// validation already paid at [`MmapIndex::open`]. Flat files serve a
    /// [`FlatView`](crate::flat::FlatView) arm, compressed files a
    /// streaming [`CompressedView`](crate::flat::CompressedView) arm — the
    /// query kernel is the same either way.
    #[inline]
    pub fn view(&self) -> IndexView<'_> {
        // SAFETY: open() ran open_view over this exact backing with these
        // parameters; the backing is immutable for self's lifetime (modulo
        // the documented external-mutation caveat) and keeps its 8-byte
        // base alignment (mmap is page-aligned, AlignedBytes by
        // construction).
        unsafe {
            persist::view_assuming_valid(
                self.backing.as_slice(),
                self.num_vertices,
                self.num_entries,
                self.version,
                self.compressed,
                self.paths,
                self.shard.is_some(),
            )
        }
    }

    /// `true` when the file carries a path section, i.e.
    /// [`crate::paths::PathOracle::path`] can answer through this index.
    pub fn has_path_data(&self) -> bool {
        self.paths
    }

    /// `true` when the file's entries section is delta+varint compressed —
    /// queries stream-decode instead of reinterpreting records in place.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// The shard identity cached at open, when the file is one QDOL shard
    /// of a sharded index; `None` for a whole index.
    pub fn shard(&self) -> Option<&ShardSpec> {
        self.shard.as_ref()
    }

    /// `true` when the file is one shard of a sharded index.
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// `true` when the index is backed by a real file mapping, `false` on
    /// the buffered fallback (feature disabled or mapping unsupported).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(feature = "mmap")]
            Backing::Mapped(_) => true,
            Backing::Buffered(_) => false,
        }
    }

    /// Number of vertices covered by the index.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Total number of labels stored.
    pub fn total_labels(&self) -> usize {
        self.num_entries
    }

    /// Size of the backing file image in bytes — what the mapping can fault
    /// in (or what the fallback buffer holds).
    pub fn file_len(&self) -> usize {
        self.backing.as_slice().len()
    }
}

impl DistanceOracle for MmapIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.view().query(u, v)
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// For a mapped index the whole file image backs queries (the kernel
    /// decides residency); the fallback holds the same bytes on the heap.
    fn memory_bytes(&self) -> usize {
        self.file_len()
    }

    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        self.view().matrix(sources, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::HubLabelIndex;
    use chl_graph::types::INFINITY;
    use chl_ranking::Ranking;

    fn tiny_flat() -> FlatIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        FlatIndex::from_index(&HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        ))
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "chl-mapped-test-{}-{:?}-{tag}.chl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn mapped_index_answers_identically_to_owned() {
        let flat = tiny_flat();
        let path = temp_path("parity");
        flat.save(&path).unwrap();

        let mapped = MmapIndex::open(&path).unwrap();
        assert_eq!(mapped.num_vertices(), flat.num_vertices());
        assert_eq!(mapped.total_labels(), flat.total_labels());
        assert_eq!(
            mapped.file_len(),
            std::fs::metadata(&path).unwrap().len() as usize
        );
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(mapped.view().query(u, v), flat.query(u, v), "({u}, {v})");
                assert_eq!(mapped.distance(u, v), flat.query(u, v));
                assert_eq!(
                    mapped.view().query_with_hub(u, v),
                    flat.query_with_hub(u, v)
                );
            }
        }
        // Out-of-range stays data, not a panic, through the mapped path too.
        assert_eq!(mapped.distance(99, 99), INFINITY);

        let oracle: &dyn DistanceOracle = &mapped;
        assert_eq!(oracle.distances(&[(0, 2), (1, 2)]), vec![2, 1]);
        assert!(oracle.memory_bytes() > 0);

        // With the feature on (and a Unix host) this is a real mapping;
        // either way the backend answered identically above.
        #[cfg(all(feature = "mmap", unix))]
        assert!(mapped.is_mapped());
        #[cfg(not(feature = "mmap"))]
        assert!(!mapped.is_mapped());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_files_are_refused_with_a_typed_error() {
        let flat = tiny_flat();
        let path = temp_path("v1");
        std::fs::write(&path, persist::to_bytes_v1(&flat)).unwrap();
        assert!(matches!(
            MmapIndex::open(&path),
            Err(PersistError::NotZeroCopy { version: 1 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_missing_files_fail_typed() {
        let flat = tiny_flat();
        let path = temp_path("corrupt");
        let mut bytes = persist::to_bytes(&flat);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MmapIndex::open(&path),
            Err(PersistError::SectionChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(MmapIndex::open(&path), Err(PersistError::Io(_))));
    }
}
