//! The [`DistanceOracle`] trait: the workspace's single query surface.
//!
//! Every structure that can answer exact point-to-point shortest-distance
//! (PPSD) queries implements this trait — the shared-memory
//! [`HubLabelIndex`], the distributed label partitions
//! (`chl_distributed::DistributedLabeling`) and the three query-serving
//! engines of `chl-query` (QLSN / QFDL / QDOL). Callers that only need
//! distances can therefore be written once against `&dyn DistanceOracle` and
//! swap storage layouts and serving modes freely; batch evaluation and
//! memory accounting come with the trait.

use chl_graph::types::{Distance, VertexId, INFINITY};

use crate::index::HubLabelIndex;

/// An exact PPSD distance oracle over a fixed vertex set `0..num_vertices`.
///
/// Implementations must return the true shortest-path distance for every
/// vertex pair ([`INFINITY`] for disconnected pairs) — hub labelings make
/// this cheap, but nothing in the trait assumes labels.
pub trait DistanceOracle {
    /// Exact shortest-path distance between `u` and `v`, [`INFINITY`] when
    /// they are not connected.
    fn distance(&self, u: VertexId, v: VertexId) -> Distance;

    /// Number of vertices the oracle covers (valid ids are `0..n`).
    fn num_vertices(&self) -> usize;

    /// Total label memory backing the oracle, in bytes, summed over every
    /// copy actually held (a replicated engine reports every replica).
    fn memory_bytes(&self) -> usize;

    /// Evaluates a batch of queries. The default maps [`Self::distance`]
    /// sequentially; engines with cheaper batch paths may override it.
    fn distances(&self, pairs: &[(VertexId, VertexId)]) -> Vec<Distance> {
        pairs.iter().map(|&(u, v)| self.distance(u, v)).collect()
    }

    /// `true` when `u` and `v` are in the same connected component.
    fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.distance(u, v) != INFINITY
    }
}

impl DistanceOracle for HubLabelIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        HubLabelIndex::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        HubLabelIndex::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_ranking::Ranking;

    fn path_index() -> HubLabelIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        )
    }

    #[test]
    fn index_answers_through_the_trait_object() {
        let idx = path_index();
        let oracle: &dyn DistanceOracle = &idx;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.num_vertices(), 3);
        assert!(oracle.memory_bytes() > 0);
        assert!(oracle.connected(0, 2));
        assert_eq!(oracle.distances(&[(0, 1), (1, 2), (0, 0)]), vec![1, 1, 0]);
    }

    #[test]
    fn disconnected_pairs_are_reported() {
        let idx = HubLabelIndex::from_triples(vec![(0, 0, 0), (1, 1, 0)], Ranking::identity(2));
        let oracle: &dyn DistanceOracle = &idx;
        assert!(!oracle.connected(0, 1));
        assert_eq!(oracle.distance(0, 1), INFINITY);
    }
}
