//! The [`DistanceOracle`] trait: the workspace's single query surface.
//!
//! Every structure that can answer exact point-to-point shortest-distance
//! (PPSD) queries implements this trait — the shared-memory
//! [`HubLabelIndex`], the distributed label partitions
//! (`chl_distributed::DistributedLabeling`) and the three query-serving
//! engines of `chl-query` (QLSN / QFDL / QDOL). Callers that only need
//! distances can therefore be written once against `&dyn DistanceOracle` and
//! swap storage layouts and serving modes freely; batch evaluation and
//! memory accounting come with the trait.

use rayon::prelude::*;

use chl_graph::types::{Distance, VertexId, INFINITY};

use crate::index::HubLabelIndex;

/// An exact PPSD distance oracle over a fixed vertex set `0..num_vertices`.
///
/// Implementations must return the true shortest-path distance for every
/// valid vertex pair ([`INFINITY`] for disconnected pairs) — hub labelings
/// make this cheap, but nothing in the trait assumes labels. Ids outside
/// `0..num_vertices()` name no vertex and must behave as unreachable:
/// [`Self::distance`] returns [`INFINITY`] (even for `u == v`) and
/// [`Self::connected`] returns `false`, never a panic. Workload files and
/// network requests routinely carry stale ids, so the serving surface treats
/// them as data, not as programmer error.
///
/// Oracles are `Sync`: an index answers queries from many threads at once,
/// which is what lets [`Self::distances`] fan a batch out across the rayon
/// pool by default.
pub trait DistanceOracle: Sync {
    /// Exact shortest-path distance between `u` and `v`, [`INFINITY`] when
    /// they are not connected or either id is out of range.
    fn distance(&self, u: VertexId, v: VertexId) -> Distance;

    /// Number of vertices the oracle covers (valid ids are `0..n`).
    fn num_vertices(&self) -> usize;

    /// Total label memory backing the oracle, in bytes, summed over every
    /// copy actually held (a replicated engine reports every replica).
    fn memory_bytes(&self) -> usize;

    /// Evaluates a batch of queries, mapping [`Self::distance`] over `pairs`
    /// in parallel chunks on the current rayon pool. `distances(pairs)[i]`
    /// always equals `distance(pairs[i].0, pairs[i].1)` — output order and
    /// values are independent of the thread count (property-tested for every
    /// implementation in this workspace). Engines with cheaper batch paths
    /// may override it, but must preserve that contract.
    fn distances(&self, pairs: &[(VertexId, VertexId)]) -> Vec<Distance> {
        pairs
            .par_iter()
            .map(|&(u, v)| self.distance(u, v))
            .collect()
    }

    /// `true` when `u` and `v` are in the same connected component (`false`
    /// whenever either id is out of range).
    fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.distance(u, v) != INFINITY
    }

    /// Evaluates the `|sources| × |targets|` distance block, row-major:
    /// `matrix(s, t)[i * t.len() + j] == distance(s[i], t[j])`, exactly —
    /// the defaulted body **is** that brute-force map (over the parallel
    /// [`Self::distances`] path). Hub-labeling backends override it with a
    /// hub-side pivot that gathers each side's labels once instead of
    /// joining per pair, but must preserve byte-identical answers
    /// (property-tested per backend). Duplicate ids contribute one
    /// row/column per occurrence.
    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        let pairs: Vec<(VertexId, VertexId)> = sources
            .iter()
            .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
            .collect();
        self.distances(&pairs)
    }

    /// The `k` targets nearest to `source`, as `(target, distance)` sorted
    /// ascending by `(distance, target id)` — the id tiebreak makes the
    /// answer deterministic. Unreachable and out-of-range targets never
    /// appear; duplicate ids in `targets` appear once per occurrence.
    fn topk(&self, source: VertexId, targets: &[VertexId], k: usize) -> Vec<(VertexId, Distance)> {
        let mut hits: Vec<(VertexId, Distance)> = targets
            .iter()
            .zip(self.matrix(&[source], targets))
            .filter(|&(_, d)| d != INFINITY)
            .map(|(&t, d)| (t, d))
            .collect();
        hits.sort_unstable_by_key(|&(t, d)| (d, t));
        hits.truncate(k);
        hits
    }

    /// Every target within `radius` of `source` (inclusive), as
    /// `(target, distance)` sorted ascending by `(distance, target id)` —
    /// the POI-within-radius workload. Same reachability and duplicate
    /// semantics as [`Self::topk`].
    fn within_radius(
        &self,
        source: VertexId,
        targets: &[VertexId],
        radius: Distance,
    ) -> Vec<(VertexId, Distance)> {
        let mut hits: Vec<(VertexId, Distance)> = targets
            .iter()
            .zip(self.matrix(&[source], targets))
            .filter(|&(_, d)| d <= radius)
            .map(|(&t, d)| (t, d))
            .collect();
        hits.sort_unstable_by_key(|&(t, d)| (d, t));
        hits
    }
}

/// Shared references serve like the oracle they point at, so borrowed
/// storage (a [`crate::flat::FlatView`] handed out by an mmap-backed index,
/// a `&FlatIndex` shared across request handlers) can flow anywhere a
/// `DistanceOracle` is expected without taking ownership.
impl<T: DistanceOracle + ?Sized> DistanceOracle for &T {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        (**self).distance(u, v)
    }

    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    // Forward the defaulted methods too, so an implementation's cheaper
    // batch path is not lost behind the reference.
    fn distances(&self, pairs: &[(VertexId, VertexId)]) -> Vec<Distance> {
        (**self).distances(pairs)
    }

    fn connected(&self, u: VertexId, v: VertexId) -> bool {
        (**self).connected(u, v)
    }

    fn matrix(&self, sources: &[VertexId], targets: &[VertexId]) -> Vec<Distance> {
        (**self).matrix(sources, targets)
    }

    fn topk(&self, source: VertexId, targets: &[VertexId], k: usize) -> Vec<(VertexId, Distance)> {
        (**self).topk(source, targets, k)
    }

    fn within_radius(
        &self,
        source: VertexId,
        targets: &[VertexId],
        radius: Distance,
    ) -> Vec<(VertexId, Distance)> {
        (**self).within_radius(source, targets, radius)
    }
}

impl DistanceOracle for HubLabelIndex {
    fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.query(u, v)
    }

    fn num_vertices(&self) -> usize {
        HubLabelIndex::num_vertices(self)
    }

    fn memory_bytes(&self) -> usize {
        HubLabelIndex::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_ranking::Ranking;

    fn path_index() -> HubLabelIndex {
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 1, 1), (2, 2, 0)],
            ranking,
        )
    }

    #[test]
    fn index_answers_through_the_trait_object() {
        let idx = path_index();
        let oracle: &dyn DistanceOracle = &idx;
        assert_eq!(oracle.distance(0, 2), 2);
        assert_eq!(oracle.num_vertices(), 3);
        assert!(oracle.memory_bytes() > 0);
        assert!(oracle.connected(0, 2));
        assert_eq!(oracle.distances(&[(0, 1), (1, 2), (0, 0)]), vec![1, 1, 0]);
    }

    #[test]
    fn disconnected_pairs_are_reported() {
        let idx = HubLabelIndex::from_triples(vec![(0, 0, 0), (1, 1, 0)], Ranking::identity(2));
        let oracle: &dyn DistanceOracle = &idx;
        assert!(!oracle.connected(0, 1));
        assert_eq!(oracle.distance(0, 1), INFINITY);
    }

    #[test]
    fn out_of_range_ids_answer_infinity_through_the_trait() {
        let idx = path_index(); // 3 vertices
        let oracle: &dyn DistanceOracle = &idx;
        assert_eq!(oracle.distance(0, 3), INFINITY);
        assert_eq!(
            oracle.distance(3, 3),
            INFINITY,
            "no vertex 3, even for u == v"
        );
        assert!(!oracle.connected(3, 3));
        assert_eq!(
            oracle.distances(&[(0, 2), (3, 0), (9, 9)]),
            vec![2, INFINITY, INFINITY]
        );
    }

    #[test]
    fn batch_distances_preserve_order_at_every_thread_count() {
        let idx = path_index();
        let pairs: Vec<(u32, u32)> = (0..64).map(|i| (i % 4, (i * 7) % 5)).collect();
        let sequential: Vec<_> = pairs.iter().map(|&(u, v)| idx.query(u, v)).collect();
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let parallel = pool.install(|| DistanceOracle::distances(&idx, &pairs));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }
}
