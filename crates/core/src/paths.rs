//! Shortest-**path** reconstruction from canonical hub labels.
//!
//! A scalar PPSD query finds the minimizing hub `h` of `u` and `v`; this
//! module turns that witness into the actual vertex walk. The key property
//! is canonicality: if hub `h` covers the pair `(u, v)`, then `h` appears in
//! the label of **every** vertex on the shortest `u`–`h` and `v`–`h`
//! sub-paths. Storing one extra word per label entry — the next vertex
//! toward that entry's hub — therefore suffices to unpack the whole path by
//! repeated lookup: follow parent records from `u` up to `h`, then from `v`
//! up to `h`, and splice the two chains at the hub.
//!
//! The parent records live in an optional 8-aligned `.chl` section (flags
//! bit 2, see [`crate::persist`]); files without it load fine and every
//! `path()` call answers a typed [`PathError::NoPathData`]. Because edge
//! weights are strictly positive, distances strictly decrease along a valid
//! parent chain — the unpacker enforces that per step, so corrupt or
//! mismatched parent data yields [`PathError::Corrupt`], never a hang.

use rayon::prelude::*;

use chl_graph::csr::CsrGraph;
use chl_graph::types::{dist_add, VertexId};

use crate::flat::{FlatIndex, IndexView, LabelStorage, LabelView};
use crate::mapped::MmapIndex;

/// Why a `path()` call could not produce an answer. Disconnected or
/// out-of-range endpoints are **not** errors — they answer `Ok(None)`, the
/// path-shaped sibling of `INFINITY`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The index carries no parent records (built without `--paths` /
    /// loaded from a `.chl` file without the path section).
    NoPathData,
    /// The named endpoint (or an interior vertex of the path) is owned by a
    /// different shard of a sharded index, so its parent chain is not
    /// locally reconstructible. Route the query to the owning shard.
    NotThisShard {
        /// The vertex whose labels this shard does not carry.
        vertex: VertexId,
    },
    /// A vertex on the parent chain is missing the label entry for the
    /// witness hub — impossible for a canonical labeling with correct
    /// parent data, so the index and its path section disagree.
    MissingLabel {
        /// The vertex whose label run lacks the hub.
        vertex: VertexId,
        /// The hub's rank position that should have been present.
        hub_pos: u32,
    },
    /// Parent data violated an invariant while unpacking (non-decreasing
    /// distance along the chain). The message names the offending step.
    Corrupt(String),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NoPathData => {
                write!(f, "index carries no path data (built without --paths)")
            }
            PathError::NotThisShard { vertex } => {
                write!(f, "vertex {vertex} is not owned by this shard")
            }
            PathError::MissingLabel { vertex, hub_pos } => write!(
                f,
                "vertex {vertex} has no label entry for hub position {hub_pos}; \
                 the path section does not match the labels"
            ),
            PathError::Corrupt(msg) => write!(f, "corrupt path data: {msg}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Path reconstruction over an index that (optionally) carries per-entry
/// parent records. The extension-trait sibling of
/// [`crate::oracle::DistanceOracle`]: every storage backend implements it,
/// and backends without path data answer typed errors instead of panicking.
pub trait PathOracle {
    /// `true` when the backend carries parent records, i.e. [`Self::path`]
    /// can answer.
    fn has_path_data(&self) -> bool;

    /// The exact shortest path from `u` to `v`, endpoints included, as a
    /// contiguous edge walk: `Ok(Some([u, ..., v]))` whose weight sum is
    /// exactly `distance(u, v)`. `Ok(Some([u]))` for `u == v`; `Ok(None)`
    /// for disconnected pairs and out-of-range ids (the path-shaped
    /// `INFINITY`). `Err` only for indexes that cannot answer: no path
    /// data, foreign shard vertices, or corrupt parent records.
    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError>;
}

/// Shared references reconstruct like the oracle they point at.
impl<T: PathOracle + ?Sized> PathOracle for &T {
    fn has_path_data(&self) -> bool {
        (**self).has_path_data()
    }

    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        (**self).path(u, v)
    }
}

/// Follows parent records from `x` up to the hub at rank position
/// `hub_pos`, returning the chain **excluding** `x` itself (so it is empty
/// when `x` is the hub). Distances strictly decrease along a valid chain —
/// weights are positive — which bounds the loop and turns any forged cycle
/// into a typed error.
fn climb<'a, S: LabelStorage<'a>>(
    view: &LabelView<'a, S>,
    parents: &[u32],
    start: VertexId,
    hub_pos: u32,
) -> Result<Vec<VertexId>, PathError> {
    let mut chain = Vec::new();
    let mut x = start;
    let (mut idx, (_, mut d)) = view
        .entry_of(x, hub_pos)
        .ok_or(PathError::MissingLabel { vertex: x, hub_pos })?;
    while d != 0 {
        let p = parents[idx];
        chain.push(p);
        let (pidx, (_, pd)) = view
            .entry_of(p, hub_pos)
            .ok_or(PathError::MissingLabel { vertex: p, hub_pos })?;
        if pd >= d {
            return Err(PathError::Corrupt(format!(
                "parent chain of vertex {start} does not descend: vertex {x} at distance {d} \
                 points to vertex {p} at distance {pd}"
            )));
        }
        (x, idx, d) = (p, pidx, pd);
    }
    Ok(chain)
}

/// The whole reconstruction over any [`LabelView`] storage: witness-hub
/// join, two parent climbs, splice at the hub.
fn view_path<'a, S: LabelStorage<'a>>(
    view: &LabelView<'a, S>,
    u: VertexId,
    v: VertexId,
) -> Result<Option<Vec<VertexId>>, PathError> {
    let parents = view.parents().ok_or(PathError::NoPathData)?;
    let n = view.num_vertices();
    if u as usize >= n || v as usize >= n {
        return Ok(None);
    }
    if u == v {
        return Ok(Some(vec![u]));
    }
    let Some((hub_pos, _)) = view.join_hub_pos(u, v) else {
        return Ok(None);
    };
    // `up` runs u → hub and `down` runs v → hub, each excluding its own
    // start vertex and ending at the hub (empty when the start IS the hub).
    let up = climb(view, parents, u, hub_pos)?;
    let down = climb(view, parents, v, hub_pos)?;
    let mut path = Vec::with_capacity(2 + up.len() + down.len());
    path.push(u);
    path.extend_from_slice(&up);
    // The hub sits at the end of whichever chain is non-empty; walk the
    // down chain backwards from just before the hub to finish at v.
    if let Some(below_hub) = down.len().checked_sub(1) {
        path.extend(down[..below_hub].iter().rev());
        path.push(v);
    }
    Ok(Some(path))
}

impl<'a, S: LabelStorage<'a>> PathOracle for LabelView<'a, S> {
    fn has_path_data(&self) -> bool {
        LabelView::has_path_data(self)
    }

    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        view_path(self, u, v)
    }
}

impl PathOracle for IndexView<'_> {
    fn has_path_data(&self) -> bool {
        IndexView::has_path_data(self)
    }

    /// Shard-honest on a shard file: an endpoint or interior chain vertex
    /// owned elsewhere answers [`PathError::NotThisShard`] (interior
    /// vertices can escape the owned set even when both endpoints are
    /// owned — the witness hub may live on another shard).
    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        if let Some(shard) = self.shard() {
            let n = self.num_vertices();
            for id in [u, v] {
                if (id as usize) < n && !shard.owns(id) {
                    return Err(PathError::NotThisShard { vertex: id });
                }
            }
        }
        let result = match &self.storage {
            crate::flat::StorageView::Flat(view) => view_path(view, u, v),
            crate::flat::StorageView::Compressed(view) => view_path(view, u, v),
        };
        match (result, self.shard()) {
            // A chain vertex with no labels on this shard is not corruption
            // of a sharded file — it is the shard boundary.
            (Err(PathError::MissingLabel { vertex, .. }), Some(shard)) if !shard.owns(vertex) => {
                Err(PathError::NotThisShard { vertex })
            }
            (result, _) => result,
        }
    }
}

impl PathOracle for FlatIndex {
    fn has_path_data(&self) -> bool {
        FlatIndex::has_path_data(self)
    }

    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        self.as_index_view().path(u, v)
    }
}

impl PathOracle for MmapIndex {
    fn has_path_data(&self) -> bool {
        MmapIndex::has_path_data(self)
    }

    fn path(&self, u: VertexId, v: VertexId) -> Result<Option<Vec<VertexId>>, PathError> {
        self.view().path(u, v)
    }
}

/// Derives the per-entry parent records of `index` from the graph it was
/// built on: for every label entry `(h, d)` of vertex `v` with `d > 0`, the
/// parent is the first CSR-order neighbor `w` of `v` with
/// `dist(w, h) + weight(v, w) == d` — a vertex one edge along a shortest
/// path toward the hub, which canonicality guarantees also carries `h`.
/// Zero-distance entries are self-parented. Runs the per-vertex derivation
/// across the rayon pool.
///
/// Fails with [`PathError::Corrupt`] when `graph` does not match the index
/// (wrong vertex count, or no neighbor witnesses an entry).
pub fn compute_parents(graph: &CsrGraph, index: &FlatIndex) -> Result<Vec<u32>, PathError> {
    let n = index.num_vertices();
    if graph.num_vertices() != n {
        return Err(PathError::Corrupt(format!(
            "graph has {} vertices but the index covers {n}",
            graph.num_vertices()
        )));
    }
    let view = index.as_view();
    let per_vertex: Vec<Result<Vec<u32>, PathError>> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let run = view.labels_of(v);
            let mut parents = Vec::with_capacity(run.len());
            for e in run {
                if e.dist == 0 {
                    parents.push(v);
                    continue;
                }
                let parent = graph
                    .neighbors(v)
                    .find(|&(w, wt)| {
                        view.entry_of(w, e.hub)
                            .is_some_and(|(_, (_, dw))| dist_add(dw, wt) == e.dist)
                    })
                    .map(|(w, _)| w);
                match parent {
                    Some(w) => parents.push(w),
                    None => {
                        return Err(PathError::Corrupt(format!(
                            "no neighbor of vertex {v} witnesses its label (hub position {}, \
                             distance {}); was the index built from this graph?",
                            e.hub, e.dist
                        )))
                    }
                }
            }
            Ok(parents)
        })
        .collect();
    let mut parents = Vec::with_capacity(index.total_labels());
    for chunk in per_vertex {
        parents.extend(chunk?);
    }
    Ok(parents)
}

/// [`compute_parents`] + attach: the one-call way to make an in-memory
/// index path-capable (what `chl build --paths` runs before saving).
pub fn attach_parents(graph: &CsrGraph, index: FlatIndex) -> Result<FlatIndex, PathError> {
    let parents = compute_parents(graph, &index)?;
    Ok(index.with_validated_parents(parents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Algorithm, ChlBuilder, RankingStrategy};
    use chl_graph::generators::{grid_network, GridOptions};

    fn grid_index() -> (CsrGraph, FlatIndex) {
        let g = grid_network(
            &GridOptions {
                rows: 4,
                cols: 4,
                ..GridOptions::default()
            },
            7,
        );
        let built = ChlBuilder::new(&g)
            .ranking(RankingStrategy::Degree)
            .algorithm(Algorithm::Pll)
            .build()
            .unwrap();
        (g, FlatIndex::from_index(&built.index))
    }

    #[test]
    fn paths_are_edge_walks_with_exact_weight() {
        let (g, index) = grid_index();
        let index = attach_parents(&g, index).unwrap();
        let weights: std::collections::HashMap<(u32, u32), u64> = g
            .edges()
            .flat_map(|e| [((e.u, e.v), e.w as u64), ((e.v, e.u), e.w as u64)])
            .collect();
        for u in 0..16 {
            for v in 0..16 {
                let d = index.query(u, v);
                let path = index.path(u, v).unwrap().expect("grid is connected");
                assert_eq!(*path.first().unwrap(), u);
                assert_eq!(*path.last().unwrap(), v);
                let mut sum = 0u64;
                for w in path.windows(2) {
                    sum += *weights
                        .get(&(w[0], w[1]))
                        .unwrap_or_else(|| panic!("({}, {}) is not an edge", w[0], w[1]));
                }
                assert_eq!(sum, d, "path {path:?} for ({u}, {v})");
                if u == v {
                    assert_eq!(path, vec![u]);
                }
            }
        }
    }

    #[test]
    fn no_path_data_is_a_typed_error() {
        let (_, index) = grid_index();
        assert!(!index.has_path_data());
        assert_eq!(index.path(0, 5), Err(PathError::NoPathData));
    }

    #[test]
    fn out_of_range_and_disconnected_answer_none() {
        let (g, index) = grid_index();
        let index = attach_parents(&g, index).unwrap();
        assert_eq!(index.path(0, 999).unwrap(), None);
        assert_eq!(index.path(999, 0).unwrap(), None);
    }

    #[test]
    fn mismatched_graph_is_reported() {
        let (_, index) = grid_index();
        let other = grid_network(
            &GridOptions {
                rows: 2,
                cols: 2,
                ..GridOptions::default()
            },
            7,
        );
        assert!(matches!(
            compute_parents(&other, &index),
            Err(PathError::Corrupt(_))
        ));
    }
}
