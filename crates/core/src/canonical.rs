//! Ground-truth canonical labeling and labeling-property checkers.
//!
//! The Canonical Hub Labeling has a direct definition (Abraham et al.,
//! restated in §1 of the paper): for every connected pair `(u, v)`, the
//! single most important vertex on the union of their shortest paths is a hub
//! of both. This module computes that labeling by brute force (all-pairs
//! Dijkstra with max-rank-on-path propagation) and provides checkers for the
//! three properties the paper reasons with — the **cover property**,
//! **respecting the hierarchy** and **minimality**. They are the backbone of
//! the correctness test-suite: every constructor is compared against
//! [`brute_force_chl`] on randomized graphs.

use chl_graph::sssp::heap::DistanceQueue;
use chl_graph::types::{dist_add, Distance, VertexId, INFINITY};
use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::index::HubLabelIndex;
use crate::labels::LabelSet;

/// For one source `u`, the distance to every vertex plus the most important
/// vertex on the union of all shortest `u`-paths (including both endpoints).
#[derive(Debug, Clone)]
pub struct PathMaxima {
    /// Shortest distances from the source.
    pub dist: Vec<Distance>,
    /// `max_on_path[v]` = most important vertex on any shortest path from the
    /// source to `v`; meaningless when `dist[v] == INFINITY`.
    pub max_on_path: Vec<VertexId>,
}

/// Dijkstra from `source` that additionally propagates, for every reached
/// vertex, the most important vertex over the **union** of all shortest paths
/// from the source.
pub fn shortest_path_maxima(g: &CsrGraph, ranking: &Ranking, source: VertexId) -> PathMaxima {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut max_on_path: Vec<VertexId> = (0..n as VertexId).collect();
    if n == 0 {
        return PathMaxima { dist, max_on_path };
    }

    // Plain Dijkstra first: exact distances, unaffected by tie-breaking.
    let mut queue = DistanceQueue::with_capacity(n);
    dist[source as usize] = 0;
    queue.push(0, source);
    let mut settle_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut settled = vec![false; n];
    while let Some((d, v)) = queue.pop() {
        if settled[v as usize] || d > dist[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        settle_order.push(v);
        for (u, w) in g.neighbors(v) {
            let cand = dist_add(d, w);
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                queue.push(cand, u);
            }
        }
    }

    // Propagate maxima over *every* shortest-path predecessor, in settle
    // order (predecessors always settle before successors).
    max_on_path[source as usize] = source;
    for &v in &settle_order {
        if v == source {
            continue;
        }
        let mut best = v;
        for (p, w) in g.in_neighbors(v) {
            if dist[p as usize] != INFINITY && dist_add(dist[p as usize], w) == dist[v as usize] {
                best = ranking.more_important_of(best, max_on_path[p as usize]);
            }
        }
        max_on_path[v as usize] = best;
    }

    PathMaxima { dist, max_on_path }
}

/// Computes the Canonical Hub Labeling by brute force. Quadratic in the graph
/// size — intended for tests and small reference runs only.
pub fn brute_force_chl(g: &CsrGraph, ranking: &Ranking) -> HubLabelIndex {
    let n = g.num_vertices();
    let mut per_vertex: Vec<std::collections::BTreeMap<u32, Distance>> =
        vec![std::collections::BTreeMap::new(); n];

    for u in 0..n as VertexId {
        let maxima = shortest_path_maxima(g, ranking, u);
        for v in 0..n as VertexId {
            if maxima.dist[v as usize] == INFINITY {
                continue;
            }
            let hub = maxima.max_on_path[v as usize];
            let hub_pos = ranking.position(hub);
            // d(u, hub): the hub lies on a shortest u-v path, so
            // d(u,hub) = d(u,v) - d(hub,v); we know d(u,·) from this run.
            let d_u_hub = maxima.dist[hub as usize];
            per_vertex[u as usize].entry(hub_pos).or_insert(d_u_hub);
            let d_v_hub = maxima.dist[v as usize] - d_u_hub;
            per_vertex[v as usize].entry(hub_pos).or_insert(d_v_hub);
        }
    }

    let labels: Vec<LabelSet> = per_vertex
        .into_iter()
        .map(|m| {
            LabelSet::from_entries(
                m.into_iter()
                    .map(|(hub, dist)| crate::labels::LabelEntry::new(hub, dist))
                    .collect(),
            )
        })
        .collect();
    HubLabelIndex::new(labels, ranking.clone())
        .expect("brute force produces one label set per vertex")
}

/// Violations found by [`check_labeling`].
#[derive(Debug, Clone, PartialEq)]
pub enum LabelingViolation {
    /// A query returned the wrong distance for a pair.
    WrongDistance {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Distance reported by the labeling.
        reported: Distance,
        /// True shortest-path distance.
        expected: Distance,
    },
    /// A label stores a distance different from the true distance to its hub.
    WrongLabelDistance {
        /// Labeled vertex.
        vertex: VertexId,
        /// Hub vertex.
        hub: VertexId,
        /// Stored distance.
        stored: Distance,
        /// True distance.
        expected: Distance,
    },
    /// The labeling does not respect the hierarchy for a pair: neither is the
    /// canonical hub labeled at both endpoints.
    DoesNotRespectHierarchy {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// The canonical hub that should cover the pair.
        canonical_hub: VertexId,
    },
    /// A redundant label was found (violates minimality).
    RedundantLabel {
        /// Labeled vertex.
        vertex: VertexId,
        /// Hub vertex of the redundant label.
        hub: VertexId,
    },
}

/// Checks the three labeling properties of §4.1 against ground truth computed
/// with plain Dijkstra. Returns every violation found (empty = the labeling
/// is the CHL for `ranking`).
pub fn check_labeling(
    g: &CsrGraph,
    ranking: &Ranking,
    index: &HubLabelIndex,
) -> Vec<LabelingViolation> {
    let n = g.num_vertices();
    let mut violations = Vec::new();
    let canonical = brute_force_chl(g, ranking);

    for u in 0..n as VertexId {
        let maxima = shortest_path_maxima(g, ranking, u);

        // Label distances must be exact.
        for e in index.labels_of(u).entries() {
            let hub_vertex = ranking.vertex_at(e.hub);
            let true_d = maxima.dist[hub_vertex as usize];
            if e.dist != true_d {
                violations.push(LabelingViolation::WrongLabelDistance {
                    vertex: u,
                    hub: hub_vertex,
                    stored: e.dist,
                    expected: true_d,
                });
            }
        }

        for v in 0..n as VertexId {
            let expected = maxima.dist[v as usize];
            let reported = index.query(u, v);
            // Cover property ⇔ exact distances for every pair.
            if reported != expected {
                violations.push(LabelingViolation::WrongDistance {
                    u,
                    v,
                    reported,
                    expected,
                });
            }
            // Respecting the hierarchy: the canonical hub must label both.
            if u != v && expected != INFINITY {
                let hub = maxima.max_on_path[v as usize];
                let hub_pos = ranking.position(hub);
                if !index.labels_of(u).contains_hub(hub_pos)
                    || !index.labels_of(v).contains_hub(hub_pos)
                {
                    violations.push(LabelingViolation::DoesNotRespectHierarchy {
                        u,
                        v,
                        canonical_hub: hub,
                    });
                }
            }
        }

        // Minimality: every stored label must be canonical.
        for e in index.labels_of(u).entries() {
            if !canonical.labels_of(u).contains_hub(e.hub) {
                violations.push(LabelingViolation::RedundantLabel {
                    vertex: u,
                    hub: ranking.vertex_at(e.hub),
                });
            }
        }
    }
    violations
}

/// Convenience wrapper: `true` iff `index` is exactly the CHL of `g` under
/// `ranking`.
pub fn is_canonical(g: &CsrGraph, ranking: &Ranking, index: &HubLabelIndex) -> bool {
    check_labeling(g, ranking, index).is_empty()
}

/// Checks only the cover property (exact query answers), which is the
/// correctness bar for non-canonical baselines such as paraPLL.
pub fn satisfies_cover_property(g: &CsrGraph, index: &HubLabelIndex) -> bool {
    let n = g.num_vertices();
    for u in 0..n as VertexId {
        let dist = chl_graph::sssp::dijkstra(g, u);
        for v in 0..n as VertexId {
            if index.query(u, v) != dist[v as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcc::lcc;
    use crate::pll::sequential_pll;
    use crate::LabelingConfig;
    use chl_graph::generators::{erdos_renyi, path_graph, star_graph};
    use chl_ranking::degree_ranking;

    #[test]
    fn maxima_on_a_path_graph() {
        // Path 0-1-2-3 with importance 2 > 1 > 0 > 3.
        let g = path_graph(4);
        let ranking = Ranking::from_order(vec![2, 1, 0, 3], 4).unwrap();
        let m = shortest_path_maxima(&g, &ranking, 0);
        assert_eq!(m.dist, vec![0, 1, 2, 3]);
        assert_eq!(m.max_on_path[1], 1);
        assert_eq!(m.max_on_path[2], 2);
        assert_eq!(m.max_on_path[3], 2);
    }

    #[test]
    fn maxima_uses_union_of_shortest_paths() {
        // Diamond: 0-1-3 and 0-2-3, both length 2. Vertex 1 is the most
        // important overall, so the max for pair (0,3) must be 1 even though
        // the path through 2 avoids it.
        let mut b = chl_graph::GraphBuilder::new_undirected();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build().unwrap();
        let ranking = Ranking::from_order(vec![1, 0, 2, 3], 4).unwrap();
        let m = shortest_path_maxima(&g, &ranking, 0);
        assert_eq!(m.max_on_path[3], 1);
    }

    #[test]
    fn brute_force_chl_on_star() {
        let g = star_graph(5);
        let ranking = Ranking::identity(5);
        let chl = brute_force_chl(&g, &ranking);
        // Center: one label; each leaf: center + itself.
        assert_eq!(chl.labels_of(0).len(), 1);
        for leaf in 1..5u32 {
            assert_eq!(chl.labels_of(leaf).len(), 2);
        }
        assert!(is_canonical(&g, &ranking, &chl));
    }

    #[test]
    fn pll_and_lcc_match_brute_force() {
        let g = erdos_renyi(40, 0.12, 10, 17);
        let ranking = degree_ranking(&g);
        let reference = brute_force_chl(&g, &ranking);
        assert_eq!(sequential_pll(&g, &ranking).index, reference);
        assert_eq!(
            lcc(&g, &ranking, &LabelingConfig::default().with_threads(4)).index,
            reference
        );
        assert!(check_labeling(&g, &ranking, &reference).is_empty());
    }

    #[test]
    fn checker_detects_missing_and_redundant_labels() {
        let g = path_graph(3);
        let ranking = Ranking::from_order(vec![1, 0, 2], 3).unwrap();
        // Missing the label (hub 1) at vertex 2 breaks cover + hierarchy.
        let broken = HubLabelIndex::from_triples(
            vec![(0, 0, 0), (0, 1, 1), (1, 1, 0), (2, 2, 0)],
            ranking.clone(),
        );
        let violations = check_labeling(&g, &ranking, &broken);
        assert!(violations
            .iter()
            .any(|v| matches!(v, LabelingViolation::WrongDistance { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, LabelingViolation::DoesNotRespectHierarchy { .. })));

        // An extra (redundant) label at vertex 2 with hub 0 violates minimality.
        let redundant = HubLabelIndex::from_triples(
            vec![
                (0, 0, 0),
                (0, 1, 1),
                (1, 1, 0),
                (2, 1, 1),
                (2, 2, 0),
                (2, 0, 2),
            ],
            ranking.clone(),
        );
        let violations = check_labeling(&g, &ranking, &redundant);
        assert!(violations
            .iter()
            .any(|v| matches!(v, LabelingViolation::RedundantLabel { vertex: 2, hub: 0 })));
        assert!(!is_canonical(&g, &ranking, &redundant));
        // But it still satisfies the cover property.
        assert!(satisfies_cover_property(&g, &redundant));
    }

    #[test]
    fn checker_detects_wrong_label_distance() {
        let g = path_graph(2);
        let ranking = Ranking::identity(2);
        let wrong =
            HubLabelIndex::from_triples(vec![(0, 0, 0), (1, 0, 5), (1, 1, 0)], ranking.clone());
        let violations = check_labeling(&g, &ranking, &wrong);
        assert!(violations.iter().any(|v| matches!(
            v,
            LabelingViolation::WrongLabelDistance {
                vertex: 1,
                hub: 0,
                stored: 5,
                expected: 1
            }
        )));
    }

    #[test]
    fn empty_graph_is_trivially_canonical() {
        let g = chl_graph::GraphBuilder::new_undirected().build().unwrap();
        let ranking = Ranking::identity(0);
        let chl = brute_force_chl(&g, &ranking);
        assert!(is_canonical(&g, &ranking, &chl));
        assert_eq!(chl.total_labels(), 0);
    }
}
