//! Sequential Pruned Landmark Labeling (Akiba et al.), the paper's `seqPLL`
//! baseline and the reference constructor of the Canonical Hub Labeling.

use std::time::Instant;

use chl_graph::CsrGraph;
use chl_ranking::Ranking;

use crate::index::{HubLabelIndex, LabelingResult};
use crate::pruned_dijkstra::{pruned_dijkstra, DijkstraScratch, PruneOptions};
use crate::stats::ConstructionStats;
use crate::table::ConcurrentLabelTable;

/// Builds the CHL sequentially: one pruned SPT per vertex, in decreasing rank
/// order, each pruned by distance queries against all previously generated
/// labels.
///
/// Thin wrapper over [`crate::api::PllLabeler`]; panics on invalid inputs.
/// Prefer [`crate::api::ChlBuilder`] (or the [`crate::api::Labeler`] trait)
/// in new code, which reports problems as [`crate::error::LabelingError`].
pub fn sequential_pll(g: &CsrGraph, ranking: &Ranking) -> LabelingResult {
    use crate::api::Labeler as _;
    crate::api::PllLabeler
        .build(g, ranking, &crate::config::LabelingConfig::default())
        .unwrap_or_else(|e| panic!("sequential_pll: {e}"))
}

pub(crate) fn sequential_pll_impl(g: &CsrGraph, ranking: &Ranking) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let table = ConcurrentLabelTable::new(n);
    let mut scratch = DijkstraScratch::new(n);
    let mut stats = ConstructionStats::new("seqPLL");
    stats.threads = 1;

    // The rank query is redundant for the sequential schedule (every more
    // important vertex already has its SPT and prunes via the distance
    // query), but harmless; we keep the distance-query-only configuration to
    // match the original PLL formulation.
    let opts = PruneOptions {
        rank_query: false,
        ..Default::default()
    };
    for pos in 0..n as u32 {
        let root = ranking.vertex_at(pos);
        let (record, queries) = pruned_dijkstra(g, ranking, root, &table, opts, &mut scratch);
        stats.spt_records.push(record);
        stats.distance_queries += queries;
    }

    stats.construction_time = start.elapsed();
    stats.total_time = start.elapsed();
    let index = HubLabelIndex::new(table.into_label_sets(), ranking.clone())
        .expect("constructor produced one label set per vertex");
    stats.labels_before_cleaning = index.total_labels();
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

/// Variant of sequential PLL whose distance queries may only use hubs with
/// rank position strictly below `max_pruning_hub`. `0` disables distance
/// pruning altogether (rank queries only). This reproduces the sweep of
/// Figure 4 ("# labels generated if pruning queries use few highest ranked
/// hubs").
pub fn pll_with_restricted_pruning(
    g: &CsrGraph,
    ranking: &Ranking,
    max_pruning_hub: u32,
) -> LabelingResult {
    let start = Instant::now();
    let n = g.num_vertices();
    let table = ConcurrentLabelTable::new(n);
    let mut scratch = DijkstraScratch::new(n);
    let mut stats = ConstructionStats::new("seqPLL-restricted");
    stats.threads = 1;

    // With distance pruning weakened the rank query becomes essential,
    // otherwise label counts degenerate to |V|^2 even for x = 0.
    let opts = PruneOptions {
        rank_query: true,
        max_pruning_hub,
    };
    for pos in 0..n as u32 {
        let root = ranking.vertex_at(pos);
        let (record, queries) = pruned_dijkstra(g, ranking, root, &table, opts, &mut scratch);
        stats.spt_records.push(record);
        stats.distance_queries += queries;
    }

    stats.construction_time = start.elapsed();
    stats.total_time = start.elapsed();
    let index = HubLabelIndex::new(table.into_label_sets(), ranking.clone())
        .expect("constructor produced one label set per vertex");
    stats.labels_before_cleaning = index.total_labels();
    stats.labels_after_cleaning = index.total_labels();
    LabelingResult { index, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chl_graph::generators::{erdos_renyi, grid_network, path_graph, star_graph, GridOptions};
    use chl_graph::sssp::dijkstra;
    use chl_graph::types::INFINITY;
    use chl_ranking::degree_ranking;

    #[test]
    fn star_graph_labels_are_minimal() {
        // Center ranked first: every leaf gets {center, itself}, center gets
        // {center}: total = 2(n-1) + 1.
        let g = star_graph(8);
        let ranking = Ranking::identity(8);
        let result = sequential_pll(&g, &ranking);
        assert_eq!(result.index.total_labels(), 15);
        assert_eq!(result.index.query(3, 5), 2);
        assert_eq!(result.index.query(0, 5), 1);
    }

    #[test]
    fn path_graph_queries_are_exact() {
        let g = path_graph(10);
        let ranking = degree_ranking(&g);
        let result = sequential_pll(&g, &ranking);
        let d0 = dijkstra(&g, 0);
        for v in 0..10u32 {
            assert_eq!(result.index.query(0, v), d0[v as usize]);
        }
    }

    #[test]
    fn random_graph_queries_match_dijkstra() {
        let g = erdos_renyi(60, 0.08, 20, 13);
        let ranking = degree_ranking(&g);
        let result = sequential_pll(&g, &ranking);
        for src in [0u32, 17, 42] {
            let d = dijkstra(&g, src);
            for v in 0..60u32 {
                assert_eq!(result.index.query(src, v), d[v as usize], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn disconnected_pairs_answer_infinity() {
        let mut b = chl_graph::GraphBuilder::new_undirected();
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 2);
        let g = b.build().unwrap();
        let ranking = Ranking::identity(4);
        let result = sequential_pll(&g, &ranking);
        assert_eq!(result.index.query(0, 3), INFINITY);
        assert_eq!(result.index.query(0, 1), 2);
    }

    #[test]
    fn stats_record_every_spt() {
        let g = grid_network(
            &GridOptions {
                rows: 5,
                cols: 5,
                ..GridOptions::default()
            },
            3,
        );
        let ranking = degree_ranking(&g);
        let result = sequential_pll(&g, &ranking);
        assert_eq!(result.stats.spt_records.len(), 25);
        assert_eq!(
            result.stats.total_labels_generated(),
            result.index.total_labels()
        );
        assert!(result.stats.distance_queries > 0);
        assert_eq!(result.stats.algorithm, "seqPLL");
    }

    #[test]
    fn restricted_pruning_grows_label_count_monotonically() {
        let g = grid_network(
            &GridOptions {
                rows: 6,
                cols: 6,
                ..GridOptions::default()
            },
            5,
        );
        let ranking = degree_ranking(&g);
        let full = sequential_pll(&g, &ranking).index.total_labels();
        let some = pll_with_restricted_pruning(&g, &ranking, 4)
            .index
            .total_labels();
        let none = pll_with_restricted_pruning(&g, &ranking, 0)
            .index
            .total_labels();
        assert!(
            none >= some,
            "fewer pruning hubs can never shrink the labeling"
        );
        assert!(some >= full);
        // Queries still answer correctly even with redundant labels present.
        let restricted = pll_with_restricted_pruning(&g, &ranking, 0);
        let d = dijkstra(&g, 0);
        for v in 0..36u32 {
            assert_eq!(restricted.index.query(0, v), d[v as usize]);
        }
    }
}
