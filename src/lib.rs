//! # planted-hub-labeling
//!
//! A from-scratch Rust reproduction of *"Planting Trees for scalable and
//! efficient Canonical Hub Labeling"* (Lakhotia, Dong, Kannan, Prasanna —
//! VLDB 2019): parallel shared-memory and distributed constructors for the
//! Canonical Hub Labeling (CHL) of weighted graphs, the PLaNT
//! communication-avoiding algorithm, the Hybrid PLaNT+DGLL constructor, the
//! paraPLL baselines, three distributed query-serving modes and a benchmark
//! harness that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is a thin facade: it re-exports the workspace's sub-crates
//! under one roof so applications can depend on a single package.
//!
//! | Module | Sub-crate | Contents |
//! |---|---|---|
//! | [`graph`] | `chl-graph` | CSR graphs, builders, IO, generators, reference SSSP |
//! | [`ranking`] | `chl-ranking` | degree and approximate-betweenness hierarchies |
//! | [`labeling`] | `chl-core` | PLL, paraPLL, LCC, GLL, PLaNT, Hybrid, cleaning, verification |
//! | [`cluster`] | `chl-cluster` | simulated multi-node cluster substrate |
//! | [`distributed`] | `chl-distributed` | DGLL, DparaPLL, distributed PLaNT and Hybrid |
//! | [`query`] | `chl-query` | QLSN / QFDL / QDOL query modes |
//! | [`datasets`] | `chl-datasets` | synthetic stand-ins for the paper's 12 datasets |
//!
//! # Quick start
//!
//! ```
//! use planted_hub_labeling::prelude::*;
//!
//! // A small weighted road-like network and the paper's default hierarchy.
//! let graph = grid_network(&GridOptions { rows: 12, cols: 12, ..GridOptions::default() }, 7);
//! let ranking = default_ranking(&graph, 7);
//!
//! // Build the canonical hub labeling with the shared-memory Hybrid.
//! let result = shared_hybrid(&graph, &ranking, &LabelingConfig::default());
//! let index = result.index;
//!
//! // Answer exact point-to-point shortest-distance queries.
//! let reference = planted_hub_labeling::graph::sssp::dijkstra(&graph, 0);
//! assert_eq!(index.query(0, 143), reference[143]);
//! ```

pub use chl_cluster as cluster;
pub use chl_core as labeling;
pub use chl_datasets as datasets;
pub use chl_distributed as distributed;
pub use chl_graph as graph;
pub use chl_query as query;
pub use chl_ranking as ranking;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use chl_cluster::{ClusterSpec, SimulatedCluster};
    pub use chl_core::canonical::{brute_force_chl, is_canonical};
    pub use chl_core::gll::gll;
    pub use chl_core::hybrid::shared_hybrid;
    pub use chl_core::lcc::lcc;
    pub use chl_core::plant::plant_labeling;
    pub use chl_core::pll::sequential_pll;
    pub use chl_core::{HubLabelIndex, LabelingConfig, LabelingResult};
    pub use chl_datasets::{load as load_dataset, DatasetId, Scale};
    pub use chl_distributed::{
        distributed_gll, distributed_hybrid, distributed_parapll, distributed_plant,
        DistributedConfig, DistributedLabeling,
    };
    pub use chl_graph::generators::{barabasi_albert, grid_network, GridOptions};
    pub use chl_graph::{CsrGraph, GraphBuilder};
    pub use chl_query::{QdolEngine, QfdlEngine, QlsnEngine, QueryEngine};
    pub use chl_ranking::{default_ranking, degree_ranking, Ranking};
}
