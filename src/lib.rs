//! # planted-hub-labeling
//!
//! A from-scratch Rust reproduction of *"Planting Trees for scalable and
//! efficient Canonical Hub Labeling"* (Lakhotia, Dong, Kannan, Prasanna —
//! VLDB 2019): parallel shared-memory and distributed constructors for the
//! Canonical Hub Labeling (CHL) of weighted graphs, the PLaNT
//! communication-avoiding algorithm, the Hybrid PLaNT+DGLL constructor, the
//! paraPLL baselines, three distributed query-serving modes and a benchmark
//! harness that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is a thin facade: it re-exports the workspace's sub-crates
//! under one roof so applications can depend on a single package.
//!
//! | Module | Sub-crate | Contents |
//! |---|---|---|
//! | [`graph`] | `chl-graph` | CSR graphs, builders, IO, generators, reference SSSP |
//! | [`ranking`] | `chl-ranking` | degree and approximate-betweenness hierarchies |
//! | [`labeling`] | `chl-core` | the [`ChlBuilder`](labeling::ChlBuilder) API over PLL, paraPLL, LCC, GLL, PLaNT, Hybrid |
//! | [`cluster`] | `chl-cluster` | simulated multi-node cluster substrate |
//! | [`distributed`] | `chl-distributed` | DGLL, DparaPLL, distributed PLaNT and Hybrid |
//! | [`query`] | `chl-query` | QLSN / QFDL / QDOL query modes behind [`DistanceOracle`](labeling::DistanceOracle) |
//! | [`serve`] | `chl-serve` | long-running TCP serving tier: batching server, hot reload, load generator |
//! | [`datasets`] | `chl-datasets` | synthetic stand-ins for the paper's 12 datasets |
//!
//! # Quick start
//!
//! Construction goes through one fluent entry point, `ChlBuilder`, which
//! works identically for every [`Algorithm`](labeling::Algorithm); querying
//! goes through the `DistanceOracle` trait, implemented by the shared-memory
//! index, the distributed partitions and all three serving engines.
//!
//! ```
//! use planted_hub_labeling::prelude::*;
//!
//! // A small weighted road-like network.
//! let graph = grid_network(&GridOptions { rows: 12, cols: 12, ..GridOptions::default() }, 7);
//!
//! // Build the canonical hub labeling: pick a hierarchy strategy and a
//! // constructor, validate, build. Swapping `Algorithm::Hybrid` for any
//! // other canonical constructor changes nothing downstream.
//! let result = ChlBuilder::new(&graph)
//!     .ranking(RankingStrategy::Auto { seed: 7 })
//!     .algorithm(Algorithm::Hybrid)
//!     .validate()
//!     .expect("valid configuration")
//!     .build()
//!     .expect("construction succeeds");
//!
//! // Answer exact point-to-point shortest-distance queries.
//! let index = result.index;
//! let reference = planted_hub_labeling::graph::sssp::dijkstra(&graph, 0);
//! assert_eq!(index.query(0, 143), reference[143]);
//!
//! // Or hold any backend behind the uniform oracle surface.
//! let oracle: &dyn DistanceOracle = &index;
//! assert_eq!(oracle.distance(0, 143), reference[143]);
//!
//! // Flatten into the contiguous serving layout; `flat.save(path)` /
//! // `FlatIndex::load(path)` persist it as a versioned `.chl` file (see
//! // `chl_core::persist`), which is also what the `chl` CLI builds and
//! // serves from.
//! let flat = FlatIndex::from_index(&index);
//! assert_eq!(flat.query(0, 143), reference[143]);
//! ```

#![forbid(unsafe_code)]

pub use chl_cluster as cluster;
pub use chl_core as labeling;
pub use chl_datasets as datasets;
pub use chl_distributed as distributed;
pub use chl_graph as graph;
pub use chl_query as query;
pub use chl_ranking as ranking;
pub use chl_serve as serve;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use chl_cluster::{ClusterSpec, SimulatedCluster};
    pub use chl_core::api::{
        Algorithm, ChlBuilder, GllLabeler, HybridLabeler, Labeler, LccLabeler, PlantLabeler,
        PllLabeler, RankingStrategy, SParaPllLabeler,
    };
    pub use chl_core::canonical::{brute_force_chl, is_canonical};
    pub use chl_core::gll::gll;
    pub use chl_core::hybrid::shared_hybrid;
    pub use chl_core::lcc::lcc;
    pub use chl_core::oracle::DistanceOracle;
    pub use chl_core::plant::plant_labeling;
    pub use chl_core::pll::sequential_pll;
    pub use chl_core::{
        FlatIndex, FlatView, HubLabelIndex, LabelingConfig, LabelingError, LabelingResult,
        MmapIndex, PersistError,
    };
    pub use chl_datasets::{load as load_dataset, DatasetId, Scale};
    pub use chl_distributed::{
        distributed_gll, distributed_hybrid, distributed_parapll, distributed_plant,
        DistributedConfig, DistributedLabeling,
    };
    pub use chl_graph::generators::{barabasi_albert, grid_network, GridOptions};
    pub use chl_graph::{CsrGraph, GraphBuilder};
    pub use chl_query::{QdolEngine, QfdlEngine, QlsnEngine, QueryEngine};
    pub use chl_ranking::{default_ranking, degree_ranking, Ranking};
    pub use chl_serve::{run_bench, BenchOptions, Client, ServeOptions, Server, SharedIndex};
}
