//! Social-network scenario: similarity / closeness queries on a scale-free
//! graph (the paper's second motivating workload). Shows how the degree
//! hierarchy keeps labels small, how paraPLL's label size degrades with
//! thread count while the CHL constructors stay minimal, and how the
//! labeling answers closeness queries instantly.
//!
//! Run with: `cargo run --release --example social_network`

use planted_hub_labeling::prelude::*;

fn main() {
    // The YouTube-like stand-in: scale-free, weights uniform in [1, sqrt(n)).
    let ds = load_dataset(DatasetId::YTB, Scale::Small, 11);
    let (graph, ranking) = (&ds.graph, &ds.ranking);
    println!(
        "YTB stand-in: {} vertices, {} edges (paper original: 1.13M / 2.99M)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Canonical labeling via GLL, through the unified builder.
    let builder = ChlBuilder::new(graph).ranking(RankingStrategy::Explicit(ranking.clone()));
    let canonical = builder
        .clone()
        .algorithm(Algorithm::Gll)
        .build()
        .expect("construction succeeds");
    println!(
        "\ncanonical labeling: ALS = {:.1}, {} labels, construction {:?}",
        canonical.index.average_label_size(),
        canonical.index.total_labels(),
        canonical.stats.total_time
    );

    // paraPLL's label size grows with the thread count; the CHL does not.
    println!("\naverage label size vs. construction threads (paraPLL vs GLL):");
    for threads in [1usize, 2, 4, 8] {
        let para = builder
            .clone()
            .algorithm(Algorithm::SParaPll)
            .threads(threads)
            .build()
            .expect("construction succeeds");
        let glln = builder
            .clone()
            .algorithm(Algorithm::Gll)
            .threads(threads)
            .build()
            .expect("construction succeeds");
        println!(
            "  {threads:>2} threads: paraPLL ALS {:>6.1}   GLL ALS {:>6.1}",
            para.index.average_label_size(),
            glln.index.average_label_size()
        );
        assert_eq!(glln.index.total_labels(), canonical.index.total_labels());
    }

    // Use the labels: find, for a few users, which of their candidate
    // contacts is "closest" in the weighted network.
    let candidates: Vec<u32> = (0..8)
        .map(|i| (i * 97) % graph.num_vertices() as u32)
        .collect();
    println!("\ncloseness queries:");
    for &user in &[3u32, 42, 111] {
        let best = candidates
            .iter()
            .filter(|&&c| c != user)
            .map(|&c| (c, canonical.index.query(user, c)))
            .min_by_key(|&(_, d)| d)
            .expect("candidate set is non-empty");
        println!(
            "  closest candidate to user {user}: vertex {} at distance {}",
            best.0, best.1
        );
    }
}
