//! Query-serving scenario: evaluate the three distributed query modes
//! (QLSN, QFDL, QDOL) of §6 on one dataset and print a Table-4-style
//! comparison of throughput, latency and memory. All exactness checks go
//! through the `DistanceOracle` trait, which the serving engines share with
//! the plain assembled index and the raw distributed partitions.
//!
//! Run with: `cargo run --release --example query_server`

use planted_hub_labeling::prelude::*;
use planted_hub_labeling::query::random_pairs;

fn main() {
    let ds = load_dataset(DatasetId::AUT, Scale::Small, 42);
    let (graph, ranking) = (&ds.graph, &ds.ranking);
    let nodes = 16usize;
    println!(
        "AUT stand-in: {} vertices, {} edges; {} simulated nodes",
        graph.num_vertices(),
        graph.num_edges(),
        nodes
    );

    // Build the labeling once with the distributed Hybrid, then serve it.
    let spec = ClusterSpec::with_nodes(nodes);
    let cluster = SimulatedCluster::new(spec);
    let labeling = distributed_hybrid(graph, ranking, &cluster, &DistributedConfig::default());
    println!(
        "labeling: ALS {:.1}, {} labels across {} nodes",
        labeling.average_label_size(),
        labeling.assemble().total_labels(),
        labeling.nodes()
    );

    let workload = random_pairs(graph.num_vertices(), 500_000, 9);
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(QlsnEngine::new(&labeling, spec)),
        Box::new(QfdlEngine::new(&labeling, spec)),
        Box::new(QdolEngine::new(&labeling, spec)),
    ];

    println!(
        "\n{:>6} | {:>18} | {:>14} | {:>18} | {:>18}",
        "mode", "throughput (Mq/s)", "latency (µs)", "total label MiB", "max node MiB"
    );
    let sample: Vec<(u32, u32)> = workload.pairs.iter().take(2000).copied().collect();
    let mut answers: Option<Vec<u64>> = None;
    for engine in &engines {
        let report = engine.evaluate(&workload);
        println!(
            "{:>6} | {:>18.2} | {:>14.1} | {:>18.2} | {:>18.2}",
            report.mode,
            report.throughput_mqps(),
            report.latency_us(),
            report.total_memory_bytes() as f64 / (1024.0 * 1024.0),
            report.max_memory_per_node_bytes() as f64 / (1024.0 * 1024.0),
        );

        // All three modes must return identical answers. The engines are
        // queried through the oracle surface they share with plain indexes.
        let these = engine.distances(&sample);
        if let Some(previous) = &answers {
            assert_eq!(
                previous,
                &these,
                "{} disagrees with the previous mode",
                engine.name()
            );
        }
        answers = Some(these);
    }

    // The raw distributed partitions are a DistanceOracle too — no engine,
    // no assembly — and must agree with the serving modes.
    let partitions: &dyn DistanceOracle = &labeling;
    assert_eq!(partitions.distances(&sample), answers.expect("engines ran"));
    println!("\nall modes returned identical answers for the sampled queries");
}
