//! Distributed scenario: construct the CHL of a graph on a simulated
//! 16-node cluster with all four distributed algorithms, compare their
//! communication volumes and per-node memory, and verify they agree.
//!
//! Run with: `cargo run --release --example distributed_cluster`

use planted_hub_labeling::prelude::*;

fn main() {
    let ds = load_dataset(DatasetId::SKIT, Scale::Small, 42);
    let (graph, ranking) = (&ds.graph, &ds.ranking);
    println!(
        "SKIT stand-in: {} vertices, {} edges, 16 simulated nodes",
        graph.num_vertices(),
        graph.num_edges()
    );

    let spec = ClusterSpec::with_nodes(16);
    let config = DistributedConfig::default();
    let reference = ChlBuilder::new(graph)
        .ranking(RankingStrategy::Explicit(ranking.clone()))
        .algorithm(Algorithm::Pll)
        .build()
        .expect("construction succeeds")
        .index;

    type Runner =
        fn(&CsrGraph, &Ranking, &SimulatedCluster, &DistributedConfig) -> DistributedLabeling;
    let algorithms: [(&str, Runner); 4] = [
        ("DparaPLL", distributed_parapll as Runner),
        ("DGLL", distributed_gll as Runner),
        ("PLaNT", distributed_plant as Runner),
        ("Hybrid", distributed_hybrid as Runner),
    ];

    println!(
        "\n{:>9} | {:>10} | {:>12} | {:>14} | {:>14} | {:>9}",
        "algorithm", "ALS", "bcast KiB", "modeled time", "max node KiB", "canonical"
    );
    for (name, runner) in algorithms {
        let cluster = SimulatedCluster::new(spec);
        let labeling = runner(graph, ranking, &cluster, &config);
        let comm = labeling.metrics.total_comm();
        let assembled = labeling.assemble();
        let canonical = assembled == reference;
        println!(
            "{:>9} | {:>10.1} | {:>12.1} | {:>14.3?} | {:>14.1} | {:>9}",
            name,
            assembled.average_label_size(),
            comm.broadcast_bytes as f64 / 1024.0,
            labeling.metrics.modeled_time(&spec),
            labeling.metrics.peak_node_label_bytes as f64 / 1024.0,
            canonical,
        );
        // Everything except DparaPLL must reproduce the canonical labeling.
        if name != "DparaPLL" {
            assert!(canonical, "{name} failed to produce the CHL");
        }
    }

    // Distributed queries over the partitioned labels (QFDL-style reduce):
    // the partitions and the assembled reference answer through the same
    // DistanceOracle surface.
    let cluster = SimulatedCluster::new(spec);
    let hybrid = distributed_hybrid(graph, ranking, &cluster, &config);
    let oracle: &dyn DistanceOracle = &hybrid;
    println!("\nQFDL-style distributed queries over the partitioned labels:");
    for (u, v) in [(0u32, 57u32), (3, 99), (12, 150)] {
        println!("  dist({u}, {v}) = {}", oracle.distance(u, v));
        assert_eq!(oracle.distance(u, v), reference.distance(u, v));
    }
    println!("\nlabels per node: {:?}", hybrid.labels_per_node());
}
