//! Road-network scenario: the workload the paper's introduction motivates
//! with route navigation. Builds the CAL stand-in road network, constructs
//! the CHL with several algorithms, compares their construction profiles and
//! shows the query-time advantage over running Dijkstra per query.
//!
//! Run with: `cargo run --release --example road_network`

use std::time::Instant;

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::labeling::{para_pll::spara_pll, plant::plant_labeling};
use planted_hub_labeling::prelude::*;
use planted_hub_labeling::query::random_pairs;

fn main() {
    // The California road-network stand-in at benchmark scale.
    let ds = load_dataset(DatasetId::CAL, Scale::Small, 42);
    let (graph, ranking) = (&ds.graph, &ds.ranking);
    println!(
        "CAL stand-in: {} vertices, {} edges (paper original: 1.89M / 4.66M)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Construct the labeling with the CHL constructors and the paraPLL baseline.
    let config = LabelingConfig::default();
    let seq = sequential_pll(graph, ranking);
    let gll = gll(graph, ranking, &config);
    let planted = plant_labeling(graph, ranking, &config);
    let para = spara_pll(graph, ranking, &config);

    println!("\nconstruction comparison (road network):");
    for (name, res) in
        [("seqPLL", &seq), ("GLL", &gll), ("PLaNT", &planted), ("SparaPLL", &para)]
    {
        println!(
            "  {name:>9}: {:>9} labels  ALS {:>6.1}  time {:?}",
            res.index.total_labels(),
            res.index.average_label_size(),
            res.stats.total_time
        );
    }
    assert_eq!(seq.index, gll.index, "GLL must produce the canonical labeling");
    assert_eq!(seq.index, planted.index, "PLaNT must produce the canonical labeling");

    // Query-time comparison: hub labels vs running Dijkstra per query.
    let workload = random_pairs(graph.num_vertices(), 10_000, 3);
    let start = Instant::now();
    let mut acc = 0u64;
    for &(u, v) in &workload.pairs {
        acc = acc.wrapping_add(gll.index.query(u, v));
    }
    let label_time = start.elapsed();

    let start = Instant::now();
    let mut acc2 = 0u64;
    for &(u, v) in workload.pairs.iter().take(20) {
        acc2 = acc2.wrapping_add(dijkstra(graph, u)[v as usize]);
    }
    let dijkstra_time_per_query = start.elapsed() / 20;
    std::hint::black_box((acc, acc2));

    println!("\nquery performance:");
    println!(
        "  hub labels : {:?} for {} queries ({:.2} µs/query)",
        label_time,
        workload.len(),
        label_time.as_secs_f64() * 1e6 / workload.len() as f64
    );
    println!("  dijkstra   : {dijkstra_time_per_query:?} per query");
    println!(
        "  speedup    : {:.0}x per query",
        dijkstra_time_per_query.as_secs_f64()
            / (label_time.as_secs_f64() / workload.len() as f64)
    );
}
