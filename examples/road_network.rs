//! Road-network scenario: the workload the paper's introduction motivates
//! with route navigation. Builds the CAL stand-in road network, constructs
//! the CHL with every constructor through the unified `Labeler` interface,
//! compares their construction profiles and shows the query-time advantage
//! over running Dijkstra per query.
//!
//! Run with: `cargo run --release --example road_network`

use std::time::Instant;

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;
use planted_hub_labeling::query::random_pairs;

fn main() {
    // The California road-network stand-in at benchmark scale.
    let ds = load_dataset(DatasetId::CAL, Scale::Small, 42);
    let (graph, ranking) = (&ds.graph, &ds.ranking);
    println!(
        "CAL stand-in: {} vertices, {} edges (paper original: 1.89M / 4.66M)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // One loop covers every constructor: the builder dispatches through the
    // `Labeler` trait, so comparing algorithms is data, not code.
    let algorithms = [
        Algorithm::Pll,
        Algorithm::Gll,
        Algorithm::Plant,
        Algorithm::SParaPll,
    ];
    println!("\nconstruction comparison (road network):");
    let mut canonical_index: Option<HubLabelIndex> = None;
    let mut gll_index: Option<HubLabelIndex> = None;
    for algo in algorithms {
        let res = ChlBuilder::new(graph)
            .ranking(RankingStrategy::Explicit(ranking.clone()))
            .algorithm(algo)
            .build()
            .expect("construction succeeds");
        println!(
            "  {:>9}: {:>9} labels  ALS {:>6.1}  time {:?}",
            algo.name(),
            res.index.total_labels(),
            res.index.average_label_size(),
            res.stats.total_time
        );
        // Every canonical constructor must reproduce the same labeling.
        if algo.is_canonical() {
            match &canonical_index {
                None => canonical_index = Some(res.index.clone()),
                Some(reference) => assert_eq!(
                    &res.index, reference,
                    "{algo} must produce the canonical labeling"
                ),
            }
        }
        if algo == Algorithm::Gll {
            gll_index = Some(res.index);
        }
    }
    let gll_index = gll_index.expect("GLL ran");

    // Query-time comparison: hub labels vs running Dijkstra per query.
    let workload = random_pairs(graph.num_vertices(), 10_000, 3);
    let start = Instant::now();
    let mut acc = 0u64;
    for &(u, v) in &workload.pairs {
        acc = acc.wrapping_add(gll_index.query(u, v));
    }
    let label_time = start.elapsed();

    let start = Instant::now();
    let mut acc2 = 0u64;
    for &(u, v) in workload.pairs.iter().take(20) {
        acc2 = acc2.wrapping_add(dijkstra(graph, u)[v as usize]);
    }
    let dijkstra_time_per_query = start.elapsed() / 20;
    std::hint::black_box((acc, acc2));

    println!("\nquery performance:");
    println!(
        "  hub labels : {:?} for {} queries ({:.2} µs/query)",
        label_time,
        workload.len(),
        label_time.as_secs_f64() * 1e6 / workload.len() as f64
    );
    println!("  dijkstra   : {dijkstra_time_per_query:?} per query");
    println!(
        "  speedup    : {:.0}x per query",
        dijkstra_time_per_query.as_secs_f64() / (label_time.as_secs_f64() / workload.len() as f64)
    );
}
