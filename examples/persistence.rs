//! The build → save → load → serve lifecycle as a library consumer sees it:
//! construct a labeling once, persist it as a `.chl` file, reload it into the
//! flat contiguous serving layout and answer queries — the same pipeline the
//! `chl` CLI drives from the shell (`chl build … && chl query …`).
//!
//! Run with: `cargo run --release --example persistence`

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;

fn main() {
    // 1. Build phase (expensive, run once): construct the canonical hub
    //    labeling of a road-like grid.
    let graph = grid_network(
        &GridOptions {
            rows: 25,
            cols: 25,
            ..GridOptions::default()
        },
        7,
    );
    let result = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Degree)
        .algorithm(Algorithm::Hybrid)
        .validate()
        .expect("configuration is valid")
        .build()
        .expect("construction succeeds");
    println!(
        "built: {} vertices, {} labels (avg {:.2} per vertex)",
        result.index.num_vertices(),
        result.index.total_labels(),
        result.index.average_label_size()
    );

    // 2. Persist: flatten the pointer-per-vertex index into two contiguous
    //    CSR arrays and write the versioned, checksummed `.chl` file.
    let path = std::env::temp_dir().join(format!("chl-example-{}.chl", std::process::id()));
    FlatIndex::from_index(&result.index)
        .save(&path)
        .expect("index saves");
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("saved: {} ({file_len} bytes)", path.display());

    // 3. Serve phase (cheap, run anywhere): a fresh process only needs the
    //    file. Loading validates magic, version, checksums and invariants —
    //    corruption surfaces as a typed `PersistError`, never a bad answer.
    let served = FlatIndex::load(&path).expect("index loads");
    let oracle: &dyn DistanceOracle = &served;
    let reference = dijkstra(&graph, 0);
    for v in [1u32, 300, 624] {
        let d = oracle.distance(0, v);
        assert_eq!(d, reference[v as usize], "served answers stay exact");
        println!("dist(0, {v}) = {d}");
    }

    // 4. Zero-copy serve: `.chl` v2 sections are 8-byte aligned, so the
    //    file can also be mapped and queried in place — validated once at
    //    open, no label byte deserialized. Same `DistanceOracle` surface,
    //    same answers; `chl query --mmap` is this path from the shell.
    let mapped = MmapIndex::open(&path).expect("v2 index maps");
    let oracle: &dyn DistanceOracle = &mapped;
    for v in [1u32, 300, 624] {
        assert_eq!(oracle.distance(0, v), reference[v as usize]);
    }
    println!(
        "mmap-served {} labels from a {}-byte file image (mapped: {})",
        mapped.total_labels(),
        mapped.file_len(),
        mapped.is_mapped()
    );

    std::fs::remove_file(&path).ok();
}
