//! Quickstart: build a canonical hub labeling for a small weighted graph
//! through the unified `ChlBuilder` API and answer point-to-point shortest
//! distance queries with it.
//!
//! Run with: `cargo run --release --example quickstart`

use planted_hub_labeling::graph::sssp::dijkstra;
use planted_hub_labeling::prelude::*;

fn main() {
    // 1. Build a small weighted road-like network (a 30x30 perturbed grid).
    let graph = grid_network(
        &GridOptions {
            rows: 30,
            cols: 30,
            max_weight: 100,
            ..GridOptions::default()
        },
        7,
    );
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2-3. One fluent entry point picks the hierarchy and the constructor.
    //    `RankingStrategy::Auto` follows the paper: approximate betweenness
    //    for road-like graphs, degree otherwise. `Algorithm::Hybrid` PLaNTs
    //    the label-heavy prefix and finishes with GLL; swapping in any other
    //    canonical `Algorithm` changes nothing downstream.
    let result = ChlBuilder::new(&graph)
        .ranking(RankingStrategy::Auto { seed: 7 })
        .algorithm(Algorithm::Hybrid)
        .validate()
        .expect("configuration is valid")
        .build()
        .expect("construction succeeds");
    let index = result.index;
    println!(
        "labeling ({}): {} labels total, average label size {:.1}, built in {:?} ({} SPTs PLaNTed)",
        Algorithm::Hybrid,
        index.total_labels(),
        index.average_label_size(),
        result.stats.total_time,
        result.stats.planted_trees,
    );

    // 4. Answer PPSD queries and cross-check a few against Dijkstra.
    let sources = [0u32, 450, 899];
    for &s in &sources {
        let reference = dijkstra(&graph, s);
        for &t in &[1u32, 250, 555, 899] {
            let by_labels = index.query(s, t);
            assert_eq!(by_labels, reference[t as usize]);
            println!("dist({s:>3}, {t:>3}) = {by_labels}");
        }
    }

    // 5. The labeling is canonical: minimal for this hierarchy.
    let ranking = index.ranking().clone();
    println!(
        "canonical check on a subsample: {}",
        if is_canonical(&graph, &ranking, &index) {
            "ok"
        } else {
            "FAILED"
        }
    );
}
